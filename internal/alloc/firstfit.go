package alloc

import "fmt"

// FirstFit allocates contexts of *exact* (arbitrary) sizes with no
// alignment requirement. It models the AMD Am29000-style base+offset
// register addressing the paper discusses in Section 4: an ADD
// relocation "eliminates the power-of-two constraint on context
// sizes", at the price of a more expensive decode path and — as the
// paper predicts — "the software for managing arbitrary-size contexts
// is likely to be more complex": this allocator must maintain a
// coalescing free list instead of a single bitmap word.
//
// Its value in this repository is the rounding ablation: comparing it
// against the OR/bitmap allocator isolates how many registers the
// power-of-two constraint actually wastes and what that waste costs.
type FirstFit struct {
	fileSize int
	maxCtx   int
	costs    CostModel
	// free spans, sorted by base, non-overlapping, coalesced.
	free  []span
	sizes map[int]int
}

type span struct{ base, size int }

// NewFirstFit returns a FirstFit allocator over fileSize registers
// with per-context size capped at maxCtx.
func NewFirstFit(fileSize, maxCtx int, costs CostModel) *FirstFit {
	validateFileSize(fileSize)
	if maxCtx < 1 || maxCtx > fileSize {
		panic(fmt.Sprintf("alloc: invalid max context size %d", maxCtx))
	}
	f := &FirstFit{fileSize: fileSize, maxCtx: maxCtx, costs: costs}
	f.Reset()
	return f
}

// Reset implements Allocator.
func (f *FirstFit) Reset() {
	f.free = []span{{0, f.fileSize}}
	f.sizes = make(map[int]int)
}

// Alloc implements Allocator: the context size equals the requirement
// exactly — zero internal fragmentation.
func (f *FirstFit) Alloc(required int) (Context, bool) {
	if required < 1 {
		panic(fmt.Sprintf("alloc: invalid requirement %d", required))
	}
	if required > f.maxCtx {
		return Context{}, false
	}
	for i, sp := range f.free {
		if sp.size < required {
			continue
		}
		base := sp.base
		if sp.size == required {
			f.free = append(f.free[:i], f.free[i+1:]...)
		} else {
			f.free[i] = span{sp.base + required, sp.size - required}
		}
		f.sizes[base] = required
		return Context{Base: base, Size: required}, true
	}
	return Context{}, false
}

// Free implements Allocator, coalescing with adjacent free spans.
func (f *FirstFit) Free(ctx Context) {
	size, ok := f.sizes[ctx.Base]
	if !ok || size != ctx.Size {
		panic(fmt.Sprintf("alloc: freeing unallocated first-fit context %+v", ctx))
	}
	delete(f.sizes, ctx.Base)
	// Insert keeping base order.
	i := 0
	for i < len(f.free) && f.free[i].base < ctx.Base {
		i++
	}
	f.free = append(f.free, span{})
	copy(f.free[i+1:], f.free[i:])
	f.free[i] = span{ctx.Base, ctx.Size}
	// Coalesce with the successor, then the predecessor.
	if i+1 < len(f.free) && f.free[i].base+f.free[i].size == f.free[i+1].base {
		f.free[i].size += f.free[i+1].size
		f.free = append(f.free[:i+1], f.free[i+2:]...)
	}
	if i > 0 && f.free[i-1].base+f.free[i-1].size == f.free[i].base {
		f.free[i-1].size += f.free[i].size
		f.free = append(f.free[:i], f.free[i+1:]...)
	}
}

// FreeRegisters implements Allocator.
func (f *FirstFit) FreeRegisters() int {
	n := 0
	for _, sp := range f.free {
		n += sp.size
	}
	return n
}

// FileSize implements Allocator.
func (f *FirstFit) FileSize() int { return f.fileSize }

// Costs implements Allocator.
func (f *FirstFit) Costs() CostModel { return f.costs }

// Fragments returns the number of free spans — a fragmentation
// indicator unique to arbitrary-size allocation (the bitmap allocator
// cannot fragment below its chunk granularity).
func (f *FirstFit) Fragments() int { return len(f.free) }

// ExactCosts models the Section 4 prediction that arbitrary-size
// context management costs more in software than the bitmap scheme: a
// free-list walk instead of a couple of mask operations.
var ExactCosts = CostModel{AllocSucceed: 40, AllocFail: 20, Dealloc: 15}
