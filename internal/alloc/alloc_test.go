package alloc

import (
	"testing"
	"testing/quick"

	"regreloc/internal/rng"
	"regreloc/internal/stats"
)

func TestRoundContextSize(t *testing.T) {
	// Paper Section 2.3: practical sizes for C drawn from [6, 24] are
	// 8, 16, 32 with a 4-register minimum.
	cases := []struct{ c, want int }{
		{1, 4}, {4, 4}, {5, 8}, {6, 8}, {8, 8}, {9, 16},
		{16, 16}, {17, 32}, {24, 32}, {32, 32},
	}
	for _, c := range cases {
		if got := RoundContextSize(c.c, 4, 64); got != c.want {
			t.Errorf("RoundContextSize(%d) = %d want %d", c.c, got, c.want)
		}
	}
}

func TestRoundContextSizePanics(t *testing.T) {
	for _, c := range []int{0, -3, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RoundContextSize(%d) did not panic", c)
				}
			}()
			RoundContextSize(c, 4, 64)
		}()
	}
}

func TestNextPow2AndIsPow2(t *testing.T) {
	if NextPow2(1) != 1 || NextPow2(3) != 4 || NextPow2(17) != 32 || NextPow2(64) != 64 {
		t.Error("NextPow2 wrong")
	}
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 100} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

// allAllocators returns one of each allocator configured for a
// 128-register file, keyed by name.
func allAllocators() map[string]Allocator {
	return map[string]Allocator{
		"bitmap": NewBitmap(128, 64, FlexibleCosts),
		"fixed":  NewFixed(128, 32),
		"lookup": NewLookup(128, LookupCosts),
		"buddy":  NewBuddy(128, 4, 64, FlexibleCosts),
	}
}

func TestAllocBasics(t *testing.T) {
	for name, a := range allAllocators() {
		t.Run(name, func(t *testing.T) {
			if a.FileSize() != 128 {
				t.Fatalf("FileSize = %d", a.FileSize())
			}
			if a.FreeRegisters() != 128 {
				t.Fatalf("initial FreeRegisters = %d", a.FreeRegisters())
			}
			ctx, ok := a.Alloc(10)
			if !ok {
				t.Fatal("Alloc(10) failed on empty file")
			}
			if ctx.Size < 10 {
				t.Fatalf("context size %d < required 10", ctx.Size)
			}
			if ctx.Base%ctx.Size != 0 {
				t.Fatalf("context base %d not aligned to size %d (invalid RRM)", ctx.Base, ctx.Size)
			}
			if a.FreeRegisters() != 128-ctx.Size {
				t.Fatalf("FreeRegisters = %d after allocating %d", a.FreeRegisters(), ctx.Size)
			}
			a.Free(ctx)
			if a.FreeRegisters() != 128 {
				t.Fatalf("FreeRegisters = %d after free", a.FreeRegisters())
			}
		})
	}
}

func TestContextRRMEqualsBase(t *testing.T) {
	c := Context{Base: 40, Size: 8}
	if c.RRM() != 40 {
		t.Errorf("RRM = %d", c.RRM())
	}
}

func TestBitmapMatchesPaperSizes(t *testing.T) {
	// With F=128, contexts of size 8 rounded from C in [6,8]: should fit
	// exactly 16 size-8 contexts.
	a := NewBitmap(128, 64, FlexibleCosts)
	var got []Context
	for {
		ctx, ok := a.Alloc(8)
		if !ok {
			break
		}
		got = append(got, ctx)
	}
	if len(got) != 16 {
		t.Errorf("packed %d size-8 contexts, want 16", len(got))
	}
	if a.FreeRegisters() != 0 {
		t.Errorf("%d registers left", a.FreeRegisters())
	}
}

func TestFixedCapacityIsFOver32(t *testing.T) {
	// The conventional baseline: F/32 contexts regardless of C.
	for _, f := range []int{64, 128, 256} {
		a := NewFixed(f, 32)
		n := 0
		for {
			if _, ok := a.Alloc(6); !ok {
				break
			}
			n++
		}
		if n != f/32 {
			t.Errorf("F=%d: fixed contexts = %d want %d", f, n, f/32)
		}
	}
}

func TestFixedRejectsOversize(t *testing.T) {
	a := NewFixed(128, 32)
	if _, ok := a.Alloc(33); ok {
		t.Error("fixed allocator accepted a 33-register thread")
	}
}

func TestFlexibleHoldsMoreContextsThanFixed(t *testing.T) {
	// The paper's central claim at the allocator level: for C ~ U[6,24],
	// register relocation keeps more contexts resident than fixed-32.
	src := rng.New(1)
	dist := rng.UniformInt{Lo: 6, Hi: 24}
	for _, f := range []int{64, 128, 256} {
		flex := NewBitmap(f, 64, FlexibleCosts)
		fixed := NewFixed(f, 32)
		nFlex, nFixed := 0, 0
		for {
			if _, ok := flex.Alloc(dist.Sample(src)); !ok {
				break
			}
			nFlex++
		}
		for {
			if _, ok := fixed.Alloc(dist.Sample(src)); !ok {
				break
			}
			nFixed++
		}
		if nFlex <= nFixed {
			t.Errorf("F=%d: flexible %d contexts <= fixed %d", f, nFlex, nFixed)
		}
	}
}

func TestHomogeneousC8Quadruples(t *testing.T) {
	// Section 3.4: with C=8 homogeneous threads, flexible supports 4x
	// the contexts of fixed-32.
	flex := NewBitmap(128, 64, FlexibleCosts)
	n := 0
	for {
		if _, ok := flex.Alloc(8); !ok {
			break
		}
		n++
	}
	if n != 16 {
		t.Errorf("flexible C=8 contexts = %d want 16 (4x fixed's 4)", n)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	for name, a := range allAllocators() {
		t.Run(name, func(t *testing.T) {
			ctx, ok := a.Alloc(16)
			if !ok {
				t.Fatal("alloc failed")
			}
			a.Free(ctx)
			defer func() {
				if recover() == nil {
					t.Error("double free did not panic")
				}
			}()
			a.Free(ctx)
		})
	}
}

func TestFreeUnallocatedPanics(t *testing.T) {
	a := NewBitmap(128, 64, FlexibleCosts)
	defer func() {
		if recover() == nil {
			t.Error("freeing unallocated context did not panic")
		}
	}()
	a.Free(Context{Base: 0, Size: 16})
}

func TestReset(t *testing.T) {
	for name, a := range allAllocators() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				a.Alloc(16)
			}
			a.Reset()
			if a.FreeRegisters() != a.FileSize() {
				t.Errorf("after Reset FreeRegisters = %d", a.FreeRegisters())
			}
		})
	}
}

func TestLookupTwoSizesOnly(t *testing.T) {
	a := NewLookup(128, LookupCosts)
	ctx, ok := a.Alloc(6)
	if !ok || ctx.Size != 16 {
		t.Errorf("Alloc(6) = %+v, want size 16", ctx)
	}
	ctx, ok = a.Alloc(17)
	if !ok || ctx.Size != 32 {
		t.Errorf("Alloc(17) = %+v, want size 32", ctx)
	}
	if _, ok := a.Alloc(33); ok {
		t.Error("lookup accepted > 32 registers")
	}
}

func TestLookup32Alignment(t *testing.T) {
	a := NewLookup(64, LookupCosts)
	// Take one 16-slot, then a 32: the 32 must be aligned (base 32).
	c16, _ := a.Alloc(16)
	if c16.Base != 0 {
		t.Fatalf("first 16 at %d", c16.Base)
	}
	c32, ok := a.Alloc(32)
	if !ok || c32.Base != 32 {
		t.Errorf("32-context at %d (ok=%v), want 32", c32.Base, ok)
	}
	// Only 16 registers left (slot 1).
	if a.FreeRegisters() != 16 {
		t.Errorf("free = %d", a.FreeRegisters())
	}
	if _, ok := a.Alloc(32); ok {
		t.Error("allocated 32 from fragmented group")
	}
	if c, ok := a.Alloc(16); !ok || c.Base != 16 {
		t.Errorf("last 16-slot: %+v ok=%v", c, ok)
	}
}

func TestBuddyCoalescing(t *testing.T) {
	a := NewBuddy(128, 4, 64, FlexibleCosts)
	// Fill with size-8 blocks, free them all, then a size-64 block must
	// succeed (requires full coalescing).
	var ctxs []Context
	for {
		ctx, ok := a.Alloc(8)
		if !ok {
			break
		}
		ctxs = append(ctxs, ctx)
	}
	if len(ctxs) != 16 {
		t.Fatalf("packed %d size-8 blocks", len(ctxs))
	}
	for _, c := range ctxs {
		a.Free(c)
	}
	if _, ok := a.Alloc(64); !ok {
		t.Error("buddy failed to coalesce freed blocks into a 64-block")
	}
}

func TestCostModels(t *testing.T) {
	if FlexibleCosts.AllocSucceed != 25 || FlexibleCosts.AllocFail != 15 || FlexibleCosts.Dealloc != 5 {
		t.Error("FlexibleCosts deviate from Figure 4")
	}
	if FixedCosts != (CostModel{}) {
		t.Error("FixedCosts must be zero (Figure 4)")
	}
	var acct stats.CycleAccount
	FlexibleCosts.ChargeAlloc(&acct, true)
	FlexibleCosts.ChargeAlloc(&acct, false)
	FlexibleCosts.ChargeDealloc(&acct)
	if acct.Get(stats.Alloc) != 40 || acct.Get(stats.Dealloc) != 5 {
		t.Errorf("charges wrong: alloc=%d dealloc=%d", acct.Get(stats.Alloc), acct.Get(stats.Dealloc))
	}
}

func TestAllocatorCostsAccessor(t *testing.T) {
	if NewBitmap(128, 64, FlexibleCosts).Costs() != FlexibleCosts {
		t.Error("bitmap costs")
	}
	if NewFixed(128, 32).Costs() != FixedCosts {
		t.Error("fixed costs")
	}
	if NewLookup(128, LookupCosts).Costs() != LookupCosts {
		t.Error("lookup costs")
	}
}

// invariantChecker drives an allocator with a random alloc/free
// workload and validates invariants after every step.
func checkAllocatorInvariants(t *testing.T, a Allocator, seed uint64, steps int) {
	t.Helper()
	src := rng.New(seed)
	type live struct{ ctx Context }
	var lives []live
	used := 0
	for i := 0; i < steps; i++ {
		if len(lives) > 0 && src.Intn(2) == 0 {
			k := src.Intn(len(lives))
			a.Free(lives[k].ctx)
			used -= lives[k].ctx.Size
			lives[k] = lives[len(lives)-1]
			lives = lives[:len(lives)-1]
		} else {
			req := src.IntRange(1, 32)
			ctx, ok := a.Alloc(req)
			if ok {
				if ctx.Size < req {
					t.Fatalf("step %d: size %d < required %d", i, ctx.Size, req)
				}
				if ctx.Base%ctx.Size != 0 {
					t.Fatalf("step %d: base %d unaligned for size %d", i, ctx.Base, ctx.Size)
				}
				if ctx.Base+ctx.Size > a.FileSize() {
					t.Fatalf("step %d: context %+v beyond file", i, ctx)
				}
				// No overlap with any live context.
				for _, l := range lives {
					if ctx.Base < l.ctx.Base+l.ctx.Size && l.ctx.Base < ctx.Base+ctx.Size {
						t.Fatalf("step %d: %+v overlaps %+v", i, ctx, l.ctx)
					}
				}
				lives = append(lives, live{ctx})
				used += ctx.Size
			}
		}
		if free := a.FreeRegisters(); free > a.FileSize()-used {
			t.Fatalf("step %d: free %d exceeds actual %d", i, free, a.FileSize()-used)
		}
	}
}

func TestAllocatorInvariantsRandomWorkload(t *testing.T) {
	for name, a := range allAllocators() {
		t.Run(name, func(t *testing.T) {
			checkAllocatorInvariants(t, a, 99, 5000)
		})
	}
}

func TestBitmapBuddyEquivalentCapacity(t *testing.T) {
	// Property: for any sequence of allocations without frees, bitmap
	// and buddy admit the same number of contexts (both are first-fit
	// power-of-two aligned allocators over the same file).
	f := func(reqsRaw []uint8) bool {
		bm := NewBitmap(256, 64, FlexibleCosts)
		bd := NewBuddy(256, 4, 64, FlexibleCosts)
		for _, r := range reqsRaw {
			req := int(r)%32 + 1
			_, ok1 := bm.Alloc(req)
			_, ok2 := bd.Alloc(req)
			if ok1 != ok2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	cases := []func(){
		func() { NewBitmap(48, 32, FlexibleCosts) },  // not a power of two
		func() { NewBitmap(512, 64, FlexibleCosts) }, // beyond one bitmap word
		func() { NewBitmap(128, 3, FlexibleCosts) },  // bad max context
		func() { NewFixed(100, 32) },                 // bad file size
		func() { NewFixed(64, 128) },                 // slot > file
		func() { NewLookup(32, LookupCosts) },        // too small
		func() { NewBuddy(128, 3, 64, FixedCosts) },  // bad min
		func() { NewBuddy(128, 4, 256, FixedCosts) }, // max > file
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBuddyLargeFile(t *testing.T) {
	// Buddy must handle files beyond the single-word bitmap limit.
	a := NewBuddy(1024, 4, 64, FlexibleCosts)
	n := 0
	for {
		if _, ok := a.Alloc(64); !ok {
			break
		}
		n++
	}
	if n != 16 {
		t.Errorf("1024-register file held %d size-64 contexts, want 16", n)
	}
}
