package alloc

import (
	"testing"

	"regreloc/internal/rng"
)

func TestFirstFitExactSizes(t *testing.T) {
	a := NewFirstFit(128, 64, ExactCosts)
	ctx, ok := a.Alloc(17)
	if !ok || ctx.Size != 17 || ctx.Base != 0 {
		t.Fatalf("ctx = %+v ok=%v", ctx, ok)
	}
	ctx2, ok := a.Alloc(6)
	if !ok || ctx2.Size != 6 || ctx2.Base != 17 {
		t.Fatalf("ctx2 = %+v", ctx2)
	}
	if a.FreeRegisters() != 128-23 {
		t.Errorf("free = %d", a.FreeRegisters())
	}
}

func TestFirstFitNoRoundingWaste(t *testing.T) {
	// The Section 4 payoff: C ~ U[6,24] threads pack by exact size, so
	// expected contexts per 128 registers ≈ 128/15 ≈ 8.5 vs the
	// pow2-rounded ~5.95.
	src := rng.New(1)
	dist := rng.UniformInt{Lo: 6, Hi: 24}
	exact := NewFirstFit(128, 64, ExactCosts)
	pow2 := NewBitmap(128, 64, FlexibleCosts)
	nExact, nPow2 := 0, 0
	for {
		if _, ok := exact.Alloc(dist.Sample(src)); !ok {
			break
		}
		nExact++
	}
	for {
		if _, ok := pow2.Alloc(dist.Sample(src)); !ok {
			break
		}
		nPow2++
	}
	if nExact <= nPow2 {
		t.Errorf("exact packing %d <= pow2 %d", nExact, nPow2)
	}
}

func TestFirstFitCoalescing(t *testing.T) {
	a := NewFirstFit(128, 64, ExactCosts)
	c1, _ := a.Alloc(30)
	c2, _ := a.Alloc(30)
	c3, _ := a.Alloc(30)
	_, _ = c1, c3
	// Free the middle, then the first: the spans must coalesce so a
	// 60-register context fits at the front.
	a.Free(c2)
	a.Free(c1)
	big, ok := a.Alloc(60)
	if !ok || big.Base != 0 || big.Size != 60 {
		t.Errorf("coalesced alloc = %+v ok=%v (fragments %d)", big, ok, a.Fragments())
	}
}

func TestFirstFitCoalesceAllThreeWays(t *testing.T) {
	a := NewFirstFit(128, 128, ExactCosts)
	c1, _ := a.Alloc(40)
	c2, _ := a.Alloc(40)
	c3, _ := a.Alloc(48)
	a.Free(c1)
	a.Free(c3)
	a.Free(c2) // merges with both neighbors
	if a.Fragments() != 1 {
		t.Errorf("fragments = %d want 1", a.Fragments())
	}
	if _, ok := a.Alloc(128); !ok {
		t.Error("full-file alloc failed after coalescing")
	}
}

func TestFirstFitMaxContext(t *testing.T) {
	a := NewFirstFit(128, 64, ExactCosts)
	if _, ok := a.Alloc(65); ok {
		t.Error("oversized context allocated")
	}
}

func TestFirstFitDoubleFreePanics(t *testing.T) {
	a := NewFirstFit(128, 64, ExactCosts)
	ctx, _ := a.Alloc(10)
	a.Free(ctx)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	a.Free(ctx)
}

func TestFirstFitInvalidRequirementPanics(t *testing.T) {
	a := NewFirstFit(128, 64, ExactCosts)
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	a.Alloc(0)
}

func TestFirstFitRandomWorkloadInvariants(t *testing.T) {
	a := NewFirstFit(256, 64, ExactCosts)
	src := rng.New(5)
	var live []Context
	used := 0
	for i := 0; i < 8000; i++ {
		if len(live) > 0 && src.Intn(2) == 0 {
			k := src.Intn(len(live))
			a.Free(live[k])
			used -= live[k].Size
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			req := src.IntRange(1, 64)
			ctx, ok := a.Alloc(req)
			if !ok {
				continue
			}
			if ctx.Size != req || ctx.Base+ctx.Size > 256 {
				t.Fatalf("step %d: bad context %+v", i, ctx)
			}
			for _, l := range live {
				if ctx.Base < l.Base+l.Size && l.Base < ctx.Base+ctx.Size {
					t.Fatalf("step %d: %+v overlaps %+v", i, ctx, l)
				}
			}
			live = append(live, ctx)
			used += req
		}
		if a.FreeRegisters() != 256-used {
			t.Fatalf("step %d: free %d want %d", i, a.FreeRegisters(), 256-used)
		}
	}
	// Free everything: one fragment remains.
	for _, l := range live {
		a.Free(l)
	}
	if a.Fragments() != 1 || a.FreeRegisters() != 256 {
		t.Errorf("after draining: fragments=%d free=%d", a.Fragments(), a.FreeRegisters())
	}
}
