package alloc

import (
	"fmt"

	"regreloc/internal/bitmap"
)

// ChunkRegisters is the allocation granularity: the paper's Appendix A
// bitmap tracks chunks of 4 contiguous registers, which also sets the
// minimum context size.
const ChunkRegisters = 4

// Bitmap is the paper's general-purpose dynamic context allocator
// (Appendix A): a single-word allocation bitmap over 4-register chunks.
// Large contexts use linear search over aligned positions
// (ContextAlloc64); smaller ones use the bit-parallel prefix scan and
// binary search (ContextAlloc16). It supports register files up to
// 256 registers (64 chunks).
type Bitmap struct {
	fileSize int
	maxCtx   int
	costs    CostModel
	free     bitmap.Word
	// sizes[chunk] is the allocated size of the context based at chunk
	// (0 = no context there). Indexed by base/ChunkRegisters, which is
	// at most 63; a fixed array keeps Alloc/Free/Reset off the heap —
	// the map this replaces was reallocated on every Reset and hashed
	// on every Alloc, visible in sweep profiles.
	sizes [64]int
}

// NewBitmap returns a Bitmap allocator for a register file of fileSize
// registers (a power of two in [32, 256]) with maximum context size
// maxCtx (the 2^w operand-field limit; the paper's experiments use 32
// as the practical upper bound since C <= 24).
func NewBitmap(fileSize, maxCtx int, costs CostModel) *Bitmap {
	validateFileSize(fileSize)
	if fileSize > 64*ChunkRegisters {
		panic(fmt.Sprintf("alloc: Bitmap supports at most %d registers, got %d", 64*ChunkRegisters, fileSize))
	}
	if !IsPow2(maxCtx) || maxCtx < ChunkRegisters || maxCtx > fileSize {
		panic(fmt.Sprintf("alloc: invalid max context size %d", maxCtx))
	}
	b := &Bitmap{fileSize: fileSize, maxCtx: maxCtx, costs: costs}
	b.Reset()
	return b
}

// Reset implements Allocator.
func (b *Bitmap) Reset() {
	b.free = bitmap.Full(b.fileSize / ChunkRegisters)
	b.sizes = [64]int{}
}

// Alloc implements Allocator. The returned context's base is
// size-aligned, so it can be installed directly as the RRM.
func (b *Bitmap) Alloc(required int) (Context, bool) {
	size := RoundContextSize(required, ChunkRegisters, b.maxCtx)
	blockChunks := size / ChunkRegisters
	totalChunks := b.fileSize / ChunkRegisters

	// Both of the paper's search procedures (ContextAlloc64's linear
	// scan and ContextAlloc16's prefix scan + binary search) return the
	// lowest free aligned block; FindAligned computes that directly.
	// The step-counted variants remain for the cost models, which
	// charge their probe counts — the placement is identical.
	chunk := b.free.FindAligned(blockChunks, totalChunks)
	if chunk < 0 {
		return Context{}, false
	}
	b.free = b.free.ClearBlock(chunk, blockChunks)
	base := chunk * ChunkRegisters
	b.sizes[chunk] = size
	return Context{Base: base, Size: size}, true
}

// Free implements Allocator.
func (b *Bitmap) Free(ctx Context) {
	chunk := ctx.Base / ChunkRegisters
	if ctx.Base%ChunkRegisters != 0 || chunk < 0 || chunk >= len(b.sizes) || b.sizes[chunk] != ctx.Size || ctx.Size == 0 {
		panic(fmt.Sprintf("alloc: freeing unallocated context %+v", ctx))
	}
	b.sizes[chunk] = 0
	b.free = b.free.SetBlock(chunk, ctx.Size/ChunkRegisters)
}

// FreeRegisters implements Allocator.
func (b *Bitmap) FreeRegisters() int { return b.free.PopCount() * ChunkRegisters }

// FileSize implements Allocator.
func (b *Bitmap) FileSize() int { return b.fileSize }

// Costs implements Allocator.
func (b *Bitmap) Costs() CostModel { return b.costs }

// Fixed models the conventional multithreaded baseline: the register
// file is divided by hardware into fileSize/32 contexts of exactly 32
// registers. Allocation picks any free slot at zero software cost
// (Figure 4's deliberately conservative assumption).
type Fixed struct {
	fileSize int
	slotSize int
	inUse    []bool
	nFree    int
}

// NewFixed returns a Fixed allocator with fileSize/slotSize hardware
// contexts. The paper uses slotSize = 32 throughout.
func NewFixed(fileSize, slotSize int) *Fixed {
	validateFileSize(fileSize)
	if !IsPow2(slotSize) || slotSize > fileSize {
		panic(fmt.Sprintf("alloc: invalid slot size %d", slotSize))
	}
	f := &Fixed{fileSize: fileSize, slotSize: slotSize}
	f.Reset()
	return f
}

// Slots returns the number of hardware contexts.
func (f *Fixed) Slots() int { return f.fileSize / f.slotSize }

// Reset implements Allocator.
func (f *Fixed) Reset() {
	f.inUse = make([]bool, f.Slots())
	f.nFree = f.Slots()
}

// Alloc implements Allocator. A thread requiring more registers than
// the slot size cannot run at all on the fixed-context machine; the
// paper's workloads keep C <= 24 < 32 so this never fires there.
func (f *Fixed) Alloc(required int) (Context, bool) {
	if required > f.slotSize {
		return Context{}, false
	}
	for i, used := range f.inUse {
		if !used {
			f.inUse[i] = true
			f.nFree--
			return Context{Base: i * f.slotSize, Size: f.slotSize}, true
		}
	}
	return Context{}, false
}

// Free implements Allocator.
func (f *Fixed) Free(ctx Context) {
	i := ctx.Base / f.slotSize
	if ctx.Base%f.slotSize != 0 || i >= len(f.inUse) || !f.inUse[i] {
		panic(fmt.Sprintf("alloc: freeing unallocated fixed context %+v", ctx))
	}
	f.inUse[i] = false
	f.nFree++
}

// FreeRegisters implements Allocator.
func (f *Fixed) FreeRegisters() int { return f.nFree * f.slotSize }

// FileSize implements Allocator.
func (f *Fixed) FileSize() int { return f.fileSize }

// Costs implements Allocator: all zero.
func (f *Fixed) Costs() CostModel { return FixedCosts }
