package alloc

import "fmt"

// Buddy is a buddy-system context allocator: a generalization of the
// paper's bitmap allocator used for ablation studies. Like Bitmap it
// allocates power-of-two, size-aligned blocks (so bases remain valid
// RRMs), but it coalesces freed buddies eagerly and supports register
// files larger than one bitmap word. Its cycle costs are configurable;
// with FlexibleCosts it is a drop-in replacement for Bitmap in the
// simulator.
type Buddy struct {
	fileSize int
	minSize  int
	maxCtx   int
	costs    CostModel
	// freeList[k] holds bases of free blocks of size minSize<<k.
	freeList [][]int
	sizes    map[int]int
	nFree    int
}

// NewBuddy returns a Buddy allocator over fileSize registers with
// minimum block size minSize and maximum context size maxCtx (all
// powers of two).
func NewBuddy(fileSize, minSize, maxCtx int, costs CostModel) *Buddy {
	validateFileSize(fileSize)
	if !IsPow2(minSize) || !IsPow2(maxCtx) || minSize > maxCtx || maxCtx > fileSize {
		panic(fmt.Sprintf("alloc: invalid buddy sizes min=%d max=%d file=%d", minSize, maxCtx, fileSize))
	}
	b := &Buddy{fileSize: fileSize, minSize: minSize, maxCtx: maxCtx, costs: costs}
	b.Reset()
	return b
}

func (b *Buddy) orders() int {
	n := 1
	for s := b.minSize; s < b.fileSize; s <<= 1 {
		n++
	}
	return n
}

func (b *Buddy) order(size int) int {
	k := 0
	for s := b.minSize; s < size; s <<= 1 {
		k++
	}
	return k
}

// Reset implements Allocator.
func (b *Buddy) Reset() {
	b.freeList = make([][]int, b.orders())
	top := len(b.freeList) - 1
	b.freeList[top] = []int{0}
	b.sizes = make(map[int]int)
	b.nFree = b.fileSize
}

// Alloc implements Allocator.
func (b *Buddy) Alloc(required int) (Context, bool) {
	size := RoundContextSize(required, b.minSize, b.maxCtx)
	k := b.order(size)
	// Find the smallest order >= k with a free block.
	j := k
	for j < len(b.freeList) && len(b.freeList[j]) == 0 {
		j++
	}
	if j == len(b.freeList) {
		return Context{}, false
	}
	// Pop a block and split down to order k.
	base := b.freeList[j][len(b.freeList[j])-1]
	b.freeList[j] = b.freeList[j][:len(b.freeList[j])-1]
	for ; j > k; j-- {
		half := b.minSize << uint(j-1)
		b.freeList[j-1] = append(b.freeList[j-1], base+half)
	}
	b.sizes[base] = size
	b.nFree -= size
	return Context{Base: base, Size: size}, true
}

// Free implements Allocator, coalescing buddies eagerly.
func (b *Buddy) Free(ctx Context) {
	size, ok := b.sizes[ctx.Base]
	if !ok || size != ctx.Size {
		panic(fmt.Sprintf("alloc: freeing unallocated buddy context %+v", ctx))
	}
	delete(b.sizes, ctx.Base)
	b.nFree += size
	base, k := ctx.Base, b.order(size)
	for k < len(b.freeList)-1 {
		buddy := base ^ (b.minSize << uint(k))
		idx := -1
		for i, fb := range b.freeList[k] {
			if fb == buddy {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		// Remove buddy and merge upward.
		last := len(b.freeList[k]) - 1
		b.freeList[k][idx] = b.freeList[k][last]
		b.freeList[k] = b.freeList[k][:last]
		if buddy < base {
			base = buddy
		}
		k++
	}
	b.freeList[k] = append(b.freeList[k], base)
}

// FreeRegisters implements Allocator.
func (b *Buddy) FreeRegisters() int { return b.nFree }

// FileSize implements Allocator.
func (b *Buddy) FileSize() int { return b.fileSize }

// Costs implements Allocator.
func (b *Buddy) Costs() CostModel { return b.costs }
