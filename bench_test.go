// Benchmarks regenerating every table and figure in the paper's
// evaluation, plus microbenchmarks of the mechanism itself. Each
// figure bench runs the corresponding experiment panel and reports
// the headline efficiencies as custom metrics, so `go test -bench=.`
// reproduces the paper's series end to end.
package regreloc_test

import (
	"context"
	"fmt"
	"io"
	"log"
	"sync/atomic"
	"testing"
	"time"

	"regreloc"
	"regreloc/internal/alloc"
	"regreloc/internal/experiment"
	"regreloc/internal/isa"
	"regreloc/internal/node"
	"regreloc/internal/pointstore"
	"regreloc/internal/policy"
	"regreloc/internal/regfile"
	"regreloc/internal/rng"
	"regreloc/internal/serve"
	"regreloc/internal/workload"
)

// benchScale keeps figure benches fast enough to iterate.
var benchScale = experiment.Scale{Threads: 24, WorkRuns: 60, MinWork: 1500}

// runPanel runs one (F, R, L) grid panel of a registered experiment
// and reports mean efficiencies per architecture.
func runPanel(b *testing.B, id, panel string) {
	b.Helper()
	e, ok := experiment.Get(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var last *experiment.Report
	for i := 0; i < b.N; i++ {
		last = e.Run(uint64(i+1), benchScale)
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, p := range last.PanelPoints(panel) {
		sums[p.Arch] += p.Eff
		counts[p.Arch]++
	}
	for arch, sum := range sums {
		b.ReportMetric(sum/float64(counts[arch]), "eff-"+arch)
	}
	if f, x := sums["fixed"], sums["flexible"]; f > 0 && x > 0 {
		b.ReportMetric(x/f, "speedup")
	}
}

// The sweep harness itself: the full Figure 5 grid (108 simulations)
// at reproduction scale, run sequentially vs on one worker per core.
// Per-point seed derivation makes both produce the identical Report;
// on a multi-core machine the parallel run should show near-linear
// speedup (the points are independent single-node simulations).
func benchSweepWorkers(b *testing.B, workers int) {
	b.Helper()
	e, ok := experiment.Get("figure5")
	if !ok {
		b.Fatal("figure5 not registered")
	}
	sc := experiment.Full
	sc.Workers = workers
	var points int
	for i := 0; i < b.N; i++ {
		r := e.Run(1, sc)
		points = len(r.Points)
		if points == 0 {
			b.Fatal("empty report")
		}
	}
	b.ReportMetric(float64(points)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

func BenchmarkSweepSequential(b *testing.B) { benchSweepWorkers(b, 1) }
func BenchmarkSweepParallel(b *testing.B)   { benchSweepWorkers(b, 0) }

// The serving layer's point-granular memoization: a figure5 grid
// submitted to a fresh daemon ("cold") vs the same grid where an
// earlier job already covered half its cells ("overlap50"). Only the
// timed submission counts; the warm-up job and server setup run with
// the timer stopped. simulated_frac is the fraction of the request's
// cells the timed submission actually simulated (1.0 cold, 0.5 with
// the overlap); points/s is the client-observed assembly rate, which
// the point store should raise by >= 2x on the overlapping re-submit.
func benchServeOverlap(b *testing.B, warmFirst bool) {
	b.Helper()
	submit := func(s *serve.Server, req serve.Request) {
		b.Helper()
		j, _, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		select {
		case <-j.Done():
		case <-time.After(time.Minute):
			b.Fatalf("job %s stuck in state %s", j.ID, j.StateNow())
		}
		if st := j.StateNow(); st != serve.StateDone {
			b.Fatalf("job state = %s", st)
		}
	}
	const totalPoints = 16 // 1 F x 2 R x 4 L x 2 architectures
	var simulated int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// One engine worker per job: elapsed time is then proportional
		// to the work actually simulated rather than to the host's core
		// count (on a many-core machine a parallel sweep finishes in the
		// time of its slowest point, masking the cells the store saved).
		s, err := serve.New(serve.Config{
			QueueCap:     8,
			Workers:      2,
			PointWorkers: 1,
			JobTimeout:   time.Minute,
			Logger:       log.New(io.Discard, "", 0),
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Start()
		// A fresh seed per iteration keeps the report cache out of the
		// comparison: each timed submission is a genuinely new request.
		seed := uint64(i + 1)
		full := serve.Request{Experiment: "figure5", Seed: seed, Scale: "quick",
			F: []int{64}, R: []int{8, 32}, L: []int{16, 32, 64, 128}}
		if warmFirst {
			warm := full
			warm.R = []int{8} // the shared (and costlier) half of the grid
			submit(s, warm)
		}
		before := s.PointCounters().Misses
		b.StartTimer()
		submit(s, full)
		b.StopTimer()
		simulated += s.PointCounters().Misses - before
		s.Shutdown(context.Background())
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(totalPoints)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	b.ReportMetric(float64(simulated)/float64(totalPoints*b.N), "simulated_frac")
}

func BenchmarkServeGridOverlap(b *testing.B) {
	b.Run("cold", func(b *testing.B) { benchServeOverlap(b, false) })
	b.Run("overlap50", func(b *testing.B) { benchServeOverlap(b, true) })
}

// The fully warm sweep: every cell of a figure5 quick grid resolves
// from the point store, so the measured rate is pure cache-assembly
// throughput — the resolve + decode pre-pass, no simulation at all.
// This is the path an interactive dashboard re-querying overlapping
// grids lives on, and the one the pre-pass parallelization targets.
func BenchmarkSweepWarm(b *testing.B) {
	e, ok := experiment.Get("figure5")
	if !ok {
		b.Fatal("figure5 not registered")
	}
	store, err := pointstore.New(64<<20, "")
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	sc := experiment.Quick
	sc.PointStore = store
	warm := e.Run(1, sc) // populate: every later run is 100% cached
	if warm.Err != nil {
		b.Fatal(warm.Err)
	}
	points := len(warm.Points)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := e.Run(1, sc)
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.StopTimer()
	if c := store.Counters(); c.Misses != int64(points) {
		b.Fatalf("warm sweep simulated: %d misses beyond the %d-point populate run", c.Misses-int64(points), points)
	}
	b.ReportMetric(float64(points)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// The fidelity tiers head to head on a cold Figure-5-style grid: the
// same 16-cell request submitted to a fresh daemon at each tier, with
// points/s the client-observed rate. The analytic tier's points/s
// should sit orders of magnitude (>= 50x) above the simulator's —
// that gap is what the adaptive mode's instant first answer buys.
func benchServeFidelity(b *testing.B, fidelity string) {
	b.Helper()
	const totalPoints = 16 // 1 F x 2 R x 4 L x 2 architectures
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := serve.New(serve.Config{
			QueueCap:     8,
			Workers:      2,
			PointWorkers: 1,
			JobTimeout:   time.Minute,
			Logger:       log.New(io.Discard, "", 0),
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Start()
		req := serve.Request{Experiment: "figure5", Seed: uint64(i + 1),
			Scale: "quick", Fidelity: fidelity,
			F: []int{64}, R: []int{8, 32}, L: []int{16, 32, 64, 128}}
		b.StartTimer()
		j, _, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		select {
		case <-j.Done():
		case <-time.After(time.Minute):
			b.Fatalf("job %s stuck in state %s", j.ID, j.StateNow())
		}
		if st := j.StateNow(); st != serve.StateDone {
			b.Fatalf("job state = %s", st)
		}
		b.StopTimer()
		s.Shutdown(context.Background())
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(totalPoints)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}

// parkedLimiter blocks every fresh simulation until its job is
// cancelled, so the adaptive-submit bench measures only the submit
// path: refinement work never occupies the workers between
// iterations.
type parkedLimiter struct{}

func (parkedLimiter) Acquire(ctx context.Context) { <-ctx.Done() }

// The adaptive mode's submit-path latency: how long a client waits for
// Submit to return with the complete analytic partial in hand. The
// refinement is cancelled immediately — only the inline plan-assembly
// cost is timed.
func benchAdaptiveSubmit(b *testing.B) {
	s, err := serve.New(serve.Config{
		QueueCap:     64,
		Workers:      2,
		PointWorkers: 1,
		JobTimeout:   time.Minute,
		ComputeLimit: parkedLimiter{},
		Logger:       log.New(io.Discard, "", 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh seed per iteration keeps every cache layer cold: the
		// timed call pays the full analytic sweep, not a memoized one.
		req := serve.Request{Experiment: "figure5", Seed: 1_000_000 + uint64(i),
			Scale: "quick", Fidelity: "adaptive",
			F: []int{64}, R: []int{8, 32}, L: []int{16, 32, 64, 128}}
		j, _, err := s.Submit(req)
		for err != nil {
			// On a box with few cores the tight submit/cancel loop can
			// outpace the workers draining cancelled jobs from the
			// FIFO; that backpressure (429) is correct server behavior,
			// not a benchmark failure. Yield off the clock and retry.
			b.StopTimer()
			time.Sleep(200 * time.Microsecond)
			b.StartTimer()
			j, _, err = s.Submit(req)
		}
		if len(j.Status(false).Partial) == 0 {
			b.Fatal("submit returned without a partial")
		}
		b.StopTimer()
		s.Cancel(j.ID)
		<-j.Done()
		b.StartTimer()
	}
}

func BenchmarkServeFidelity(b *testing.B) {
	b.Run("sim", func(b *testing.B) { benchServeFidelity(b, "sim") })
	b.Run("analytic", func(b *testing.B) { benchServeFidelity(b, "analytic") })
	b.Run("adaptive-submit", benchAdaptiveSubmit)
}

// The serving layer under production-shaped load: many concurrent
// clients (SetParallelism x GOMAXPROCS goroutines), half the
// submissions repeating a small shared pool of grids (hitting the
// report cache, the point store, and single-flight coalescing), half
// unique (cold simulation). Each op is one submit-and-wait round
// trip, so ns/op is the client-observed time-to-result under
// contention; cmd/rrload measures the same mix over real HTTP.
func BenchmarkServeLoad(b *testing.B) {
	s, err := serve.New(serve.Config{
		QueueCap:     512,
		Workers:      4,
		PointWorkers: 1,
		JobTimeout:   time.Minute,
		Logger:       log.New(io.Discard, "", 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())

	pool := make([]serve.Request, 4)
	for i := range pool {
		pool[i] = serve.Request{Experiment: "figure5", Seed: uint64(i + 1),
			Scale: "quick", F: []int{64}, R: []int{8}, L: []int{16}}
	}
	var uniq, rejected atomic.Int64
	b.SetParallelism(16) // clients = 16 x GOMAXPROCS
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			req := pool[i%len(pool)]
			if i%2 == 1 {
				// Unique grid: a fresh seed cold-misses every cache layer.
				req.Seed = 1_000_000 + uint64(uniq.Add(1))
			}
			i++
			j, status, err := s.Submit(req)
			if err != nil {
				if status == 429 {
					rejected.Add(1)
					continue
				}
				b.Error(err)
				return
			}
			select {
			case <-j.Done():
			case <-time.After(time.Minute):
				b.Error("job stuck")
				return
			}
		}
	})
	b.StopTimer()
	pc := s.PointCounters()
	total := pc.Hits + pc.Misses
	b.ReportMetric(float64(pc.Misses)/b.Elapsed().Seconds(), "points/s")
	if total > 0 {
		b.ReportMetric(float64(pc.Hits)/float64(total), "point_hit_frac")
	}
	b.ReportMetric(float64(rejected.Load()), "rejected")
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// Figure 5: cache faults, one bench per register file size panel.
func BenchmarkFigure5(b *testing.B) {
	for _, f := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("F%d", f), func(b *testing.B) {
			runPanel(b, "figure5", fmt.Sprintf("F=%d", f))
		})
	}
}

// Figure 6: synchronization faults with two-phase unloading.
func BenchmarkFigure6(b *testing.B) {
	for _, f := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("F%d", f), func(b *testing.B) {
			runPanel(b, "figure6", fmt.Sprintf("F=%d", f))
		})
	}
}

// Section 3.3: the Figure 6(a) rerun with the cheap lookup-table
// allocator.
func BenchmarkFigure6aCheapAlloc(b *testing.B) {
	runPanel(b, "figure6a-cheap", "F=64")
}

// Section 3.4: homogeneous context sizes.
func BenchmarkHomogeneousC8(b *testing.B)  { runPanel(b, "homogeneous-c8", "F=128") }
func BenchmarkHomogeneousC16(b *testing.B) { runPanel(b, "homogeneous-c16", "F=128") }

// Section 3 intro: combined cache + synchronization faults.
func BenchmarkCombinedFaults(b *testing.B) { runPanel(b, "combined", "F=128") }

// Section 4 ablation: power-of-two (OR) vs exact (ADD) context sizes.
func BenchmarkAblationRounding(b *testing.B) { runPanel(b, "ablation-rounding", "F=128") }

// Section 3.4: machine-size scaling with network feedback.
func BenchmarkScaling(b *testing.B) {
	e, ok := experiment.Get("scaling")
	if !ok {
		b.Fatal("scaling not registered")
	}
	var last *experiment.Report
	for i := 0; i < b.N; i++ {
		last = e.Run(uint64(i+1), benchScale)
	}
	if fx, ok := last.Find("P-sweep", "fixed", 12, 512); ok {
		b.ReportMetric(fx.Eff, "eff-fixed-P512")
	}
	if fl, ok := last.Find("P-sweep", "flexible", 12, 512); ok {
		b.ReportMetric(fl.Eff, "eff-flexible-P512")
	}
}

// Section 5.2: shared-cache interference vs resident contexts.
func BenchmarkCacheInterference(b *testing.B) {
	e, ok := experiment.Get("cache-interference")
	if !ok {
		b.Fatal("cache-interference not registered")
	}
	var last *experiment.Report
	for i := 0; i < b.N; i++ {
		last = e.Run(uint64(i+1), benchScale)
	}
	for _, p := range last.PanelPoints("adaptive") {
		b.ReportMetric(float64(p.L), "adaptive-N")
		b.ReportMetric(p.Eff, "adaptive-util")
	}
}

// Figure 3: the software context switch measured on the
// instruction-level machine.
func BenchmarkFigure3ContextSwitch(b *testing.B) {
	var cost float64
	for i := 0; i < b.N; i++ {
		c, err := experiment.MeasureContextSwitch()
		if err != nil {
			b.Fatal(err)
		}
		cost = c
	}
	b.ReportMetric(cost, "cycles/switch")
}

// Figure 4: allocator operation costs — the Go implementations of the
// Appendix A routines, measured as real ns/op, with the paper's cycle
// charges as metrics.
func BenchmarkFigure4AllocatorCosts(b *testing.B) {
	b.Run("bitmap-alloc-free", func(b *testing.B) {
		a := alloc.NewBitmap(128, 64, alloc.FlexibleCosts)
		src := rng.New(1)
		for i := 0; i < b.N; i++ {
			ctx, ok := a.Alloc(src.IntRange(6, 24))
			if ok {
				a.Free(ctx)
			}
		}
		b.ReportMetric(float64(alloc.FlexibleCosts.AllocSucceed), "model-cycles")
	})
	b.Run("lookup-alloc-free", func(b *testing.B) {
		a := alloc.NewLookup(128, alloc.LookupCosts)
		src := rng.New(1)
		for i := 0; i < b.N; i++ {
			ctx, ok := a.Alloc(src.IntRange(6, 24))
			if ok {
				a.Free(ctx)
			}
		}
		b.ReportMetric(float64(alloc.LookupCosts.AllocSucceed), "model-cycles")
	})
	b.Run("buddy-alloc-free", func(b *testing.B) {
		a := alloc.NewBuddy(128, 4, 64, alloc.FlexibleCosts)
		src := rng.New(1)
		for i := 0; i < b.N; i++ {
			ctx, ok := a.Alloc(src.IntRange(6, 24))
			if ok {
				a.Free(ctx)
			}
		}
	})
	b.Run("unload-ISA-measured", func(b *testing.B) {
		var cycles int64
		for i := 0; i < b.N; i++ {
			c, err := experiment.MeasureUnload(16)
			if err != nil {
				b.Fatal(err)
			}
			cycles = c
		}
		b.ReportMetric(float64(cycles), "cycles/unload-C16")
	})
}

// Figure 2 / Section 4 ablation: relocation operator cost at decode.
func BenchmarkDecodeRelocation(b *testing.B) {
	for _, mode := range []regfile.Mode{regfile.ModeOR, regfile.ModeADD, regfile.ModeMUX, regfile.ModeBounded} {
		b.Run(mode.String(), func(b *testing.B) {
			f := regfile.New(128, mode)
			f.SetRRM(40)
			f.SetBound(8)
			sink := 0
			for i := 0; i < b.N; i++ {
				abs, _ := f.Relocate(i&7, isa.OperandBits)
				sink += abs
			}
			if sink == -1 {
				b.Fatal("impossible")
			}
		})
	}
}

// Raw machine execution speed (simulated instructions per real second).
func BenchmarkMachineExecution(b *testing.B) {
	prog, err := regreloc.Assemble(`
		movi r1, 0
		li r2, 1000000000
	loop:
		addi r1, r1, 1
		add r3, r1, r2
		xor r4, r3, r1
		bne r1, r2, loop
		halt
	`)
	if err != nil {
		b.Fatal(err)
	}
	m := regreloc.NewMachine(regreloc.MachineConfig{})
	m.Load(prog, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// Multi-RRM decode (Section 5.3) vs single-RRM execution.
func BenchmarkMultiRRM(b *testing.B) {
	run := func(b *testing.B, multi bool, src string) {
		prog, err := regreloc.Assemble(src)
		if err != nil {
			b.Fatal(err)
		}
		m := regreloc.NewMachine(regreloc.MachineConfig{MultiRRM: multi})
		m.Load(prog, 0)
		bits := m.RF.RRMBits()
		m.RF.SetRRM2(32 | 64<<uint(bits))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Step(); err != nil {
				b.Fatal(err)
			}
			if m.Halted() {
				m.PC = 0
			}
		}
	}
	b.Run("single", func(b *testing.B) {
		run(b, false, "add r3, r4, r5\nbeq r0, r0, 0")
	})
	b.Run("multi", func(b *testing.B) {
		run(b, true, "add c0.r3, c0.r4, c1.r6\nbeq r0, r0, 0")
	})
}

// Node simulator throughput: simulated cycles per real second.
func BenchmarkNodeSimulation(b *testing.B) {
	spec := workload.SyncFaults(32, 512, workload.PaperCtxSize(), 32, 8000)
	var simulated int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := node.Run(node.FlexibleConfig(128, policy.TwoPhase{}, 8), spec, uint64(i+1))
		simulated += res.Full.Total()
	}
	b.ReportMetric(float64(simulated)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
}

// The analytic model is essentially free; benchmarked to document it.
func BenchmarkAnalyticModel(b *testing.B) {
	p := regreloc.NewAnalyticParams(32, 512, 8)
	sink := 0.0
	for i := 0; i < b.N; i++ {
		sink += p.Efficiency(float64(i%16) + 1)
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// Assembler throughput on the full kernel runtime.
func BenchmarkAssembler(b *testing.B) {
	prog, err := regreloc.Assemble("nop")
	if err != nil || len(prog.Words) != 1 {
		b.Fatal("assembler broken")
	}
	src := `
	start:
		movi r1, 100
		lw r2, 4(r1)
		add r3, r2, r1
		beq r3, r1, start
		jal r4, start
		halt
	`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regreloc.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// ISA-level efficiency sweep: the managed machine across fault
// latencies (every runtime operation in assembly).
func BenchmarkManagedISA(b *testing.B) {
	e, ok := experiment.Get("managed-isa")
	if !ok {
		b.Fatal("managed-isa not registered")
	}
	var last *experiment.Report
	for i := 0; i < b.N; i++ {
		last = e.Run(uint64(i+1), benchScale)
	}
	for _, p := range last.PanelPoints("ISA") {
		b.ReportMetric(p.Eff, fmt.Sprintf("eff-L%d", p.L))
	}
}
