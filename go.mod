module regreloc

go 1.22
