package regreloc_test

import (
	"strings"
	"testing"

	"regreloc"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	spec := regreloc.CacheFaultWorkload(16, 256, regreloc.PaperContextSizes(), 32, 4000)
	fixed := regreloc.RunNode(regreloc.FixedNode(128, regreloc.NeverUnload, 6), spec, 1)
	flex := regreloc.RunNode(regreloc.FlexibleNode(128, regreloc.NeverUnload, 6), spec, 1)
	if flex.Efficiency <= fixed.Efficiency {
		t.Errorf("flexible %.3f <= fixed %.3f", flex.Efficiency, fixed.Efficiency)
	}
	params := regreloc.NewAnalyticParams(16, 256, 6)
	if params.Saturated() <= 0 || params.SaturationPoint() <= 1 {
		t.Error("analytic params broken")
	}
}

func TestPublicAPIMachineFlow(t *testing.T) {
	m := regreloc.NewMachine(regreloc.MachineConfig{Registers: 128})
	prog, err := regreloc.Assemble("movi r1, 5\naddi r2, r1, 1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	m.Load(prog, 0)
	m.RF.SetRRM(32)
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.RF.Read(34) != 6 {
		t.Errorf("relocated r2 = %d", m.RF.Read(34))
	}
	if s := regreloc.Disassemble(uint32(prog.Words[0])); s != "movi r1, 5" {
		t.Errorf("Disassemble = %q", s)
	}
}

func TestPublicAPIKernelFlow(t *testing.T) {
	m := regreloc.NewMachine(regreloc.MachineConfig{Registers: 128})
	k := regreloc.NewKernel(m, regreloc.NewBitmapAllocator(128, 64, regreloc.FlexibleCosts))
	if _, err := k.LoadUser("t0:\n addi r4, r4, 1\n jal r0, yield\n beq r0, r0, t0"); err != nil {
		t.Fatal(err)
	}
	th, err := k.Spawn("t0", k.Runtime.Symbols["t0"], 8)
	if err != nil {
		t.Fatal(err)
	}
	k.Link()
	k.Start()
	if err := k.Run(100); err == nil {
		t.Fatal("halted unexpectedly")
	}
	if m.RF.Read(th.Ctx.Base+4) == 0 {
		t.Error("thread made no progress")
	}
}

func TestPublicAPIAllocators(t *testing.T) {
	for _, a := range []regreloc.Allocator{
		regreloc.NewBitmapAllocator(128, 64, regreloc.FlexibleCosts),
		regreloc.NewFixedAllocator(128, 32),
		regreloc.NewLookupAllocator(128, regreloc.LookupCosts),
		regreloc.NewBuddyAllocator(128, 4, 64, regreloc.FlexibleCosts),
	} {
		ctx, ok := a.Alloc(10)
		if !ok || ctx.Size < 10 || ctx.Base%ctx.Size != 0 {
			t.Errorf("%T: ctx = %+v ok = %v", a, ctx, ok)
		}
		a.Free(ctx)
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	ids := regreloc.ExperimentIDs()
	if len(ids) < 10 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	tiny := regreloc.ExperimentScale{Threads: 12, WorkRuns: 40, MinWork: 800}
	rep, ok := regreloc.RunExperiment("figure5", 1, tiny)
	if !ok {
		t.Fatal("figure5 missing")
	}
	if !strings.Contains(regreloc.RenderTable(rep), "F=64") {
		t.Error("table broken")
	}
	if !strings.Contains(regreloc.RenderPlot(rep, "F=128"), "legend") {
		t.Error("plot broken")
	}
	if !strings.Contains(regreloc.RenderCSV(rep), "figure5,") {
		t.Error("csv broken")
	}
	if !strings.Contains(regreloc.RenderSummary(rep), "geomean") {
		t.Error("summary broken")
	}
	if _, ok := regreloc.RunExperiment("nonsense", 1, tiny); ok {
		t.Error("phantom experiment ran")
	}
}

func TestPublicAPICompilerAndChecker(t *testing.T) {
	g := regreloc.NewCallGraph()
	adv := regreloc.AdviseContextSize(17, 128, regreloc.NewAnalyticParams(16, 1024, 6))
	if adv.Registers != 16 {
		t.Errorf("advice = %+v", adv)
	}
	_ = g
	prog, err := regreloc.Assemble("add r9, r1, r1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	vs := regreloc.CheckProgram(prog, regreloc.CheckOptions{ContextSize: 8})
	if len(vs) != 1 {
		t.Errorf("violations = %v", vs)
	}
}

func TestPublicAPISoftwareOnly(t *testing.T) {
	if regreloc.ProfileMIPSR3000.MaxContexts() != 2 {
		t.Error("MIPS profile wrong")
	}
	part, err := regreloc.PlanSoftwareContexts(regreloc.ProfileLargeFile, []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := regreloc.Assemble("movi r1, 7\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := regreloc.RelocateAtCompileTime(prog, part.Bases[1], part.Sizes[1])
	if err != nil {
		t.Fatal(err)
	}
	m := regreloc.NewMachine(regreloc.MachineConfig{})
	m.Load(rel, 0)
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.RF.Read(part.Bases[1]+1) != 7 {
		t.Error("compile-time relocation broken")
	}
}

func TestPublicAPITrace(t *testing.T) {
	rec := regreloc.NewTraceRecorder(0)
	cfg := regreloc.FlexibleNode(64, regreloc.TwoPhaseUnload, 8)
	cfg.Tracer = rec
	spec := regreloc.SyncFaultWorkload(32, 200, regreloc.PaperContextSizes(), 8, 1000)
	res := regreloc.RunNode(cfg, spec, 2)
	if rec.Len() == 0 {
		t.Fatal("nothing traced")
	}
	tl := rec.Timeline(0, res.Full.Total(), 60)
	if !strings.Contains(tl, "legend") {
		t.Error("timeline broken")
	}
}

func TestPublicAPIRelocationModes(t *testing.T) {
	for _, mode := range []regreloc.RelocationMode{
		regreloc.RelocateOR, regreloc.RelocateADD, regreloc.RelocateMUX, regreloc.RelocateBounded,
	} {
		m := regreloc.NewMachine(regreloc.MachineConfig{Registers: 128, Mode: mode})
		prog, err := regreloc.Assemble("movi r1, 9\nhalt")
		if err != nil {
			t.Fatal(err)
		}
		m.Load(prog, 0)
		m.RF.SetRRM(16)
		if err := m.Run(10); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if m.RF.Read(17) != 9 {
			t.Errorf("mode %v: relocated write missing", mode)
		}
	}
}

func TestPublicAPINetworkAndCache(t *testing.T) {
	res := regreloc.SimulateNetwork(regreloc.NetworkConfig{Processors: 32}, 0.01, 30_000, 1)
	if res.Requests == 0 || res.MeanLatency <= 0 {
		t.Errorf("network result = %+v", res)
	}
	lat, eff := regreloc.NetworkFixedPoint(regreloc.NetworkConfig{Processors: 64}, 32, 8, 6, 20_000, 1)
	if lat <= 0 || eff <= 0 || eff > 1 {
		t.Errorf("fixed point = %g, %g", lat, eff)
	}
	study := regreloc.DefaultCacheStudy()
	study.TotalRefs = 20_000
	m1, m4 := study.MissRate(1, 7), study.MissRate(4, 7)
	if m4 <= m1 {
		t.Errorf("interference missing: %g vs %g", m1, m4)
	}
	lim := regreloc.NewAdaptiveLimiter(1, 1, 8)
	if n := lim.Observe(0.5); n < 1 || n > 8 {
		t.Errorf("limiter stepped to %d", n)
	}
}

func TestPublicAPICoupledRun(t *testing.T) {
	spec := regreloc.SyncFaultWorkload(16, 1, regreloc.PaperContextSizes(), 16, 2000)
	res := regreloc.CoupledNodeRun(
		regreloc.NetworkConfig{Processors: 32},
		regreloc.FlexibleNode(128, regreloc.TwoPhaseUnload, 8),
		spec, 10_000, 1)
	if res.Efficiency <= 0 || res.Latency <= 0 || res.Rounds < 1 {
		t.Errorf("coupled result = %+v", res)
	}
	if res.NodeResult.Completed != 16 {
		t.Errorf("completed %d/16", res.NodeResult.Completed)
	}
}
