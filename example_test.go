package regreloc_test

import (
	"fmt"

	"regreloc"
)

// The paper's Figure 1(a): with 128 registers, a context of size 8
// allocated at base 40 relocates context-relative register 5 to
// absolute register 45 — the RRM is OR-ed into the operand at decode.
func Example_figure1Relocation() {
	m := regreloc.NewMachine(regreloc.MachineConfig{Registers: 128})
	prog, _ := regreloc.Assemble("movi r5, 99\nhalt")
	m.Load(prog, 0)
	m.RF.SetRRM(40)
	if err := m.Run(10); err != nil {
		panic(err)
	}
	fmt.Println("absolute register 45 =", m.RF.Read(45))
	// Output: absolute register 45 = 99
}

// Context allocation with the paper's Appendix A bitmap allocator:
// power-of-two sizes, size-aligned bases usable directly as RRMs.
func ExampleNewBitmapAllocator() {
	a := regreloc.NewBitmapAllocator(128, 64, regreloc.FlexibleCosts)
	small, _ := a.Alloc(6)  // rounds to 8
	large, _ := a.Alloc(17) // rounds to 32
	fmt.Printf("6-register thread -> context size %d at base %d\n", small.Size, small.Base)
	fmt.Printf("17-register thread -> context size %d at base %d\n", large.Size, large.Base)
	// Output:
	// 6-register thread -> context size 8 at base 0
	// 17-register thread -> context size 32 at base 32
}

// The Section 3.4 analytic model: efficiency is linear in resident
// contexts until saturation at N* = 1 + L/(R+S).
func ExampleAnalyticParams() {
	p := regreloc.NewAnalyticParams(32, 128, 8)
	fmt.Printf("E_sat = %.2f, N* = %.1f\n", p.Saturated(), p.SaturationPoint())
	fmt.Printf("E(2 contexts) = %.2f, E(8 contexts) = %.2f\n", p.Efficiency(2), p.Efficiency(8))
	// Output:
	// E_sat = 0.80, N* = 4.2
	// E(2 contexts) = 0.38, E(8 contexts) = 0.80
}

// The static context-boundary checker from Section 2.4: a thread
// declared to use an 8-register context must not reference r8+.
func ExampleCheckProgram() {
	prog, _ := regreloc.Assemble("add r9, r1, r1\nhalt")
	for _, v := range regreloc.CheckProgram(prog, regreloc.CheckOptions{ContextSize: 8}) {
		fmt.Println(v)
	}
	// Output: line 1 (addr 0): add r9, r1, r1: rd operand r9 outside context of 8 registers
}

// The Section 2.4 compiler tradeoff: a thread needing 17 registers
// would occupy a 32-register context; in a latency-dominated regime
// the advisor trims it to 16 so more contexts stay resident.
func ExampleAdviseContextSize() {
	adv := regreloc.AdviseContextSize(17, 128, regreloc.NewAnalyticParams(16, 1024, 6))
	fmt.Printf("use %d registers in a %d-register context\n", adv.Registers, adv.ContextSize)
	// Output: use 16 registers in a 16-register context
}

// The Section 5.1 software-only scheme: the MIPS R3000's register
// budget limits compile-time relocation to two contexts.
func ExampleSWProfile() {
	fmt.Println("MIPS R3000 compile-time contexts:", regreloc.ProfileMIPSR3000.MaxContexts())
	// Output: MIPS R3000 compile-time contexts: 2
}
