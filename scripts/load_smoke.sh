#!/usr/bin/env bash
# Smoke test for the rrload harness: build rrserved and rrload, boot
# the daemon with per-tenant admission control, run a short load burst
# with overlapping grids and two tenants, and check that the summary
# reports latency percentiles and a JSON snapshot lands. Run via
# `make load-smoke`.
set -euo pipefail

ADDR="${RRSERVED_ADDR:-127.0.0.1:18348}"
CLIENTS="${RRLOAD_CLIENTS:-32}"
DURATION="${RRLOAD_DURATION:-3s}"
TMP="$(mktemp -d)"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== building rrserved + rrload"
go build -o "$TMP/rrserved" ./cmd/rrserved
go build -o "$TMP/rrload" ./cmd/rrload

echo "== starting rrserved on $ADDR (tenant cap 16, weights tenant0=4)"
"$TMP/rrserved" -addr "$ADDR" -queue 128 -workers 4 \
    -tenant-max-inflight 16 -tenant-weights tenant0=4 &
PID=$!

for i in $(seq 1 50); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$PID" 2>/dev/null; then echo "rrserved died during boot" >&2; exit 1; fi
    sleep 0.2
done
curl -fsS "http://$ADDR/readyz" >/dev/null

echo "== running rrload: $CLIENTS clients, 50% overlap, $DURATION"
OUT="$TMP/load.json"
"$TMP/rrload" -addr "$ADDR" -clients "$CLIENTS" -duration "$DURATION" \
    -overlap 0.5 -tenants 2 -label load-smoke -out "$OUT" | tee "$TMP/summary.txt"

grep -q 'submit latency' "$TMP/summary.txt" || { echo "summary missing latency line" >&2; exit 1; }
grep -q '"label": *"load-smoke"' "$OUT" || { echo "snapshot not written" >&2; exit 1; }
grep -q '"submit_p99_ms"' "$OUT" || { echo "snapshot missing p99" >&2; exit 1; }

echo "== verifying tenant metrics surfaced"
METRICS=$(curl -fsS "http://$ADDR/metrics")
printf '%s\n' "$METRICS" | grep -q 'rrserve_tenant_submitted_total{tenant="tenant0"}' \
    || { echo "per-tenant counters missing" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep -q '^rrserve_submit_duration_seconds_count ' \
    || { echo "submit-duration histogram missing" >&2; exit 1; }

echo "== draining via SIGTERM"
kill -TERM "$PID"
WAITED=0
while kill -0 "$PID" 2>/dev/null; do
    sleep 0.2
    WAITED=$((WAITED + 1))
    [ "$WAITED" -lt 150 ] || { echo "daemon did not exit within 30s of SIGTERM" >&2; exit 1; }
done
wait "$PID" && RC=0 || RC=$?
[ "$RC" -eq 0 ] || { echo "daemon exited $RC after SIGTERM" >&2; exit 1; }

echo "load-smoke: OK"
