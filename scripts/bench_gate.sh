#!/bin/sh
# bench_gate.sh — the serving-throughput regression gate.
#
# Runs the pinned serving benchmarks and compares their points/s
# against the best value recorded in the committed BENCH_*.json
# trajectory for this machine class (cpu-string match). A drop of more
# than DROP (default 15%) fails; a machine with no recorded history
# passes with a note, so the gate is safe on any box.
#
# Usage:
#   scripts/bench_gate.sh            # gate the pinned benches
#   DROP=0.25 scripts/bench_gate.sh  # loosen the threshold
#
# GATE_BENCHES overrides the benchmark selection; GATE_REQUIRE names
# benchmarks that must be present in the run (catches a silently
# renamed or deleted benchmark passing vacuously).
set -eu
cd "$(dirname "$0")/.."

DROP=${DROP:-0.15}
GATE_BENCHES=${GATE_BENCHES:-'BenchmarkServeGridOverlap/cold$|BenchmarkServeFidelity/sim$|BenchmarkServeFidelity/analytic$|BenchmarkSweepWarm$'}
GATE_STORE_BENCHES=${GATE_STORE_BENCHES:-'BenchmarkPointStoreParallel/mixed-p8$'}
GATE_REQUIRE=${GATE_REQUIRE:-'ServeGridOverlap/cold,ServeFidelity/sim,ServeFidelity/analytic,SweepWarm,PointStoreParallel/mixed-p8'}

# Two packages feed one gate run: the root harness (serving + warm
# sweep) and the point store's parallel throughput bench. benchgate
# reads the concatenated output; the cpu string is the same either way.
{
  go test -run '^$' -bench "$GATE_BENCHES" -benchtime 2s -count 1 .
  go test -run '^$' -bench "$GATE_STORE_BENCHES" -benchtime 2s -count 1 ./internal/pointstore
} | go run ./scripts/benchgate -drop "$DROP" -require "$GATE_REQUIRE" BENCH_*.json
