#!/bin/sh
# bench_json.sh — run the key benchmarks and append one JSON snapshot
# to the benchmark-trajectory file named on the command line.
#
# Usage:
#   scripts/bench_json.sh <label> <outfile>
#
# BENCHES (environment) overrides the benchmark selection regex, e.g.
# to record a single benchmark under two configurations:
#   BENCHES='BenchmarkServeGridOverlap/cold' scripts/bench_json.sh pr5-baseline BENCH_PR5.json
#
# PKG (environment) selects the package to benchmark (default: the
# repository root harness), e.g.:
#   BENCHES='BenchmarkAnalyze' PKG=./internal/analysis scripts/bench_json.sh pr7-analyzer BENCH_PR7.json
#
# The outfile is a JSON array of snapshots, one per invocation:
#
#   [
#     {
#       "label": "pr4-baseline",
#       "goos": "linux", "goarch": "amd64", "cpu": "...",
#       "benchmarks": [
#         {"name": "NodeSimulation", "iterations": 594,
#          "ns_per_op": 4122407.0, "bytes_per_op": 608773,
#          "allocs_per_op": 13700, "metrics": {"Mcycles/s": 167.5}}
#       ]
#     }
#   ]
#
# Future PRs append comparable snapshots (same benches, same machine
# class) so the trajectory shows every regression or win; see
# docs/performance.md for the conventions.
set -eu

LABEL=${1:?"usage: scripts/bench_json.sh <label> <outfile>"}
OUT=${2:?"usage: scripts/bench_json.sh <label> <outfile>"}
BENCHES=${BENCHES:-'BenchmarkNodeSimulation$|BenchmarkSweepParallel$|BenchmarkMachineExecution$|BenchmarkFigure5/F128|BenchmarkServeGridOverlap|BenchmarkSweepWarm$'}
PKG=${PKG:-.}

RAW=$(go test -run '^$' -bench "$BENCHES" -benchmem -benchtime 2s -count 1 "$PKG")

SNAP=$(printf '%s\n' "$RAW" | awk -v label="$LABEL" '
function jnum(s) { return s + 0 }
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    iters = $2
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
    metrics = ""
    # Fields come in (value, unit) pairs after the iteration count.
    for (i = 3; i + 1 <= NF; i += 2) {
        v = $i; u = $(i + 1)
        if (u == "ns/op")           line = line sprintf(", \"ns_per_op\": %s", jnum(v))
        else if (u == "B/op")       line = line sprintf(", \"bytes_per_op\": %s", jnum(v))
        else if (u == "allocs/op")  line = line sprintf(", \"allocs_per_op\": %s", jnum(v))
        else {
            if (metrics != "") metrics = metrics ", "
            metrics = metrics sprintf("\"%s\": %s", u, jnum(v))
        }
    }
    line = line sprintf(", \"metrics\": {%s}}", metrics)
    benches[++n] = line
}
END {
    printf "  {\n    \"label\": \"%s\",\n", label
    printf "    \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\",\n", goos, goarch, cpu
    printf "    \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) printf "  %s%s\n", benches[i], (i < n ? "," : "")
    printf "    ]\n  }"
}')

if [ ! -s "$OUT" ]; then
    printf '[\n%s\n]\n' "$SNAP" > "$OUT"
else
    # Append the snapshot before the closing bracket.
    TMP=$(mktemp)
    sed '$d' "$OUT" > "$TMP"            # drop the final "]"
    # Add a comma to the last snapshot's closing brace.
    sed -i '$s/}$/},/' "$TMP"
    printf '%s\n]\n' "$SNAP" >> "$TMP"
    mv "$TMP" "$OUT"
fi
printf '%s\n' "$RAW" >&2
echo "appended snapshot \"$LABEL\" to $OUT" >&2
