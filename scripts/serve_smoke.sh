#!/usr/bin/env bash
# Smoke test for the rrserved daemon: build it, boot it, submit a tiny
# sweep over HTTP, poll to completion, verify cache + metrics
# counters, then check that SIGTERM drains cleanly. Run via
# `make serve-smoke`.
set -euo pipefail

ADDR="${RRSERVED_ADDR:-127.0.0.1:18347}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
BIN="$TMP/rrserved"
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== building rrserved"
go build -o "$BIN" ./cmd/rrserved

echo "== starting rrserved on $ADDR"
"$BIN" -addr "$ADDR" -queue 8 -workers 2 -cache-dir "$TMP/cache" &
PID=$!

for i in $(seq 1 50); do
    if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then break; fi
    if ! kill -0 "$PID" 2>/dev/null; then echo "rrserved died during boot" >&2; exit 1; fi
    sleep 0.2
done
curl -fsS "$BASE/readyz" >/dev/null

REQ='{"experiment":"figure5","seed":1,"scale":"quick","f":[64],"r":[8],"l":[16,32]}'

echo "== submitting tiny sweep"
SUBMIT=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$REQ" "$BASE/v1/jobs")
JOB=$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "no job id in: $SUBMIT" >&2; exit 1; }

echo "== polling job $JOB"
for i in $(seq 1 150); do
    STATUS=$(curl -fsS "$BASE/v1/jobs/$JOB?result=false")
    STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    case "$STATE" in
        done) break ;;
        failed|canceled) echo "job ended $STATE: $STATUS" >&2; exit 1 ;;
    esac
    sleep 0.2
done
[ "$STATE" = done ] || { echo "job stuck in state '$STATE'" >&2; exit 1; }

echo "== verifying result and cache behaviour"
curl -fsS "$BASE/v1/jobs/$JOB" | grep -q '"panel"' || { echo "result missing points" >&2; exit 1; }
RESUBMIT=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$REQ" "$BASE/v1/jobs")
printf '%s' "$RESUBMIT" | grep -q '"cached": *true' || { echo "resubmission not cached: $RESUBMIT" >&2; exit 1; }

echo "== verifying metrics counters"
METRICS=$(curl -fsS "$BASE/metrics")
printf '%s\n' "$METRICS" | grep -q '^rrserve_engine_runs_total 1$' || { echo "expected exactly one engine run" >&2; printf '%s\n' "$METRICS" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep -q '^rrserve_cache_hits_total 1$' || { echo "expected one cache hit" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep -q 'rrserve_jobs_total{state="done"} 2' || { echo "expected two done jobs" >&2; exit 1; }

echo "== draining via SIGTERM"
kill -TERM "$PID"
WAITED=0
while kill -0 "$PID" 2>/dev/null; do
    sleep 0.2
    WAITED=$((WAITED + 1))
    [ "$WAITED" -lt 75 ] || { echo "daemon did not exit within 15s of SIGTERM" >&2; exit 1; }
done
wait "$PID" && RC=0 || RC=$?
[ "$RC" -eq 0 ] || { echo "daemon exited $RC after SIGTERM" >&2; exit 1; }
[ -f "$TMP/cache/index.json" ] || { echo "cache index not persisted on shutdown" >&2; exit 1; }

echo "serve-smoke: OK"
