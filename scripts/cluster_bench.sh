#!/usr/bin/env bash
# Cluster scaling benchmark: measure cold-sweep throughput (points/s)
# through one single-node rrserved versus a coordinator with three
# workers, and append both ServeLoad snapshots to a trajectory file.
#
# All nodes run under the same -compute-rate cap, the per-node capacity
# model that makes scaling measurable on one box: N co-located worker
# processes otherwise just slice a single CPU N ways and measure
# nothing (see docs/cluster.md, "Measuring scaling on one box"). Keep
# workers * RATE below the machine's real simulation throughput or the
# cap stops being the bottleneck and the numbers stop meaning anything.
#
# Usage: scripts/cluster_bench.sh [outfile]   (default BENCH_PR8.json)
set -euo pipefail

OUT="${1:-BENCH_PR8.json}"
RATE="${RRCLUSTER_RATE:-250}"               # points/s per node
DURATION="${RRCLUSTER_DURATION:-12s}"
CLIENTS="${RRCLUSTER_CLIENTS:-16}"
BASE_PORT="${RRCLUSTER_BASE_PORT:-18450}"
SINGLE="127.0.0.1:$BASE_PORT"
W1="127.0.0.1:$((BASE_PORT + 1))"
W2="127.0.0.1:$((BASE_PORT + 2))"
W3="127.0.0.1:$((BASE_PORT + 3))"
COORD="127.0.0.1:$((BASE_PORT + 4))"
TMP="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

wait_ready() {
    local addr=$1 i
    for i in $(seq 1 50); do
        if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "daemon at $addr never became ready" >&2
    return 1
}

stop_daemon() {
    kill -TERM "$1" 2>/dev/null || true
    local waited=0
    while kill -0 "$1" 2>/dev/null; do
        sleep 0.2
        waited=$((waited + 1))
        [ "$waited" -lt 150 ] || return 1
    done
}

echo "== building rrserved + rrload"
go build -o "$TMP/rrserved" ./cmd/rrserved
go build -o "$TMP/rrload" ./cmd/rrload

# Cold sweeps only (-overlap 0): every submission is a unique grid, so
# throughput is bounded by simulation capacity, not cache hits.
load() { # addr label
    "$TMP/rrload" -addr "$1" -clients "$CLIENTS" -duration "$DURATION" \
        -overlap 0 -snapshot-label "$2" -out "$OUT"
}

echo "== single node at $RATE points/s"
"$TMP/rrserved" -addr "$SINGLE" -queue 256 -workers 8 -compute-rate "$RATE" &
SINGLE_PID=$!
PIDS+=("$SINGLE_PID")
wait_ready "$SINGLE"
load "$SINGLE" "serveload-single-1w-rate$RATE"
stop_daemon "$SINGLE_PID"

echo "== 3 workers + coordinator, each node at $RATE points/s"
for addr in "$W1" "$W2" "$W3"; do
    "$TMP/rrserved" -addr "$addr" -role worker -workers 2 -compute-rate "$RATE" &
    PIDS+=($!)
done
for addr in "$W1" "$W2" "$W3"; do wait_ready "$addr"; done
"$TMP/rrserved" -addr "$COORD" -role coordinator \
    -cluster-workers "http://$W1,http://$W2,http://$W3" \
    -queue 256 -workers 8 -compute-rate "$RATE" &
PIDS+=($!)
wait_ready "$COORD"
load "$COORD" "serveload-cluster-3w-rate$RATE"

echo "== points/s recorded in $OUT:"
grep -B1 -A0 '"points/s"' "$OUT" | sed -n 's/.*"points\/s": *\([0-9.]*\).*/  \1/p'
echo "cluster-bench: done"
