// Command benchgate fails CI when serving throughput regresses: it
// parses `go test -bench` output on stdin, extracts a throughput
// metric (points/s by default) per benchmark, and compares each
// against the best value recorded for that benchmark in the committed
// snapshot files (the BENCH_*.json trajectory scripts/bench_json.sh
// maintains). A drop past the threshold fails the gate.
//
// Only snapshots whose cpu string matches the current run's machine
// are compared — a laptop cannot fail the gate against a CI box's
// numbers. No comparable baseline is a pass with a note, so the gate
// is safe to run anywhere; it bites only where history exists.
//
// Usage:
//
//	go test -run '^$' -bench 'ServeGridOverlap|ServeFidelity' . \
//	  | go run ./scripts/benchgate -drop 0.15 BENCH_*.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// snapshot mirrors the bench_json.sh / rrload trajectory layout.
type snapshot struct {
	Label      string `json:"label"`
	CPU        string `json:"cpu"`
	Benchmarks []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

// baseline is the best recorded value of one benchmark's metric.
type baseline struct {
	value float64
	label string
	file  string
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	drop := fs.Float64("drop", 0.15, "max tolerated fractional drop vs the best recorded value")
	metric := fs.String("metric", "points/s", "benchmark metric to gate on")
	require := fs.String("require", "", "comma-separated benchmark names that must appear in the current run (with the metric), e.g. ServeGridOverlap/cold")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no snapshot files given")
		return 2
	}

	current, cpu, err := parseBenchOutput(os.Stdin, *metric)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 2
	}
	if len(current) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmarks with a %q metric on stdin\n", *metric)
		return 2
	}
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			if _, ok := current[name]; !ok {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL: required benchmark %s missing from the run\n", name)
				return 1
			}
		}
	}

	best := make(map[string]baseline)
	for _, path := range fs.Args() {
		raw, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			return 2
		}
		var snaps []snapshot
		if err := json.Unmarshal(raw, &snaps); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			return 2
		}
		for _, s := range snaps {
			if s.CPU != cpu {
				continue // different machine class: not comparable
			}
			for _, b := range s.Benchmarks {
				v, ok := b.Metrics[*metric]
				if !ok || v <= 0 {
					continue
				}
				if prev, seen := best[b.Name]; !seen || v > prev.value {
					best[b.Name] = baseline{value: v, label: s.Label, file: path}
				}
			}
		}
	}

	failed := false
	for name, got := range current {
		base, ok := best[name]
		if !ok {
			fmt.Printf("benchgate: %-28s %10.1f %s  (no comparable baseline for cpu %q — pass)\n",
				name, got, *metric, cpu)
			continue
		}
		floor := base.value * (1 - *drop)
		verdict := "ok"
		if got < floor {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("benchgate: %-28s %10.1f %s  vs best %.1f (%s, %s), floor %.1f: %s\n",
			name, got, *metric, base.value, base.label, base.file, floor, verdict)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: throughput dropped more than %.0f%% below the best recorded snapshot\n", *drop*100)
		return 1
	}
	return 0
}

// benchLine matches one benchmark result line; the -N GOMAXPROCS
// suffix is stripped to match the snapshot naming.
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBenchOutput extracts the metric per benchmark and the cpu
// string from `go test -bench` text.
func parseBenchOutput(r *os.File, metric string) (map[string]float64, string, error) {
	out := make(map[string]float64)
	var cpu string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		fields := strings.Fields(m[2])
		// Fields come in (value, unit) pairs.
		for i := 0; i+1 < len(fields); i += 2 {
			if fields[i+1] != metric {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err == nil {
				out[m[1]] = v
			}
		}
	}
	return out, cpu, sc.Err()
}
