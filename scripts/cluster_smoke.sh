#!/usr/bin/env bash
# Smoke test for distributed sweep execution (docs/cluster.md): run the
# same sweep through a single-node rrserved and through a coordinator
# fanning out to three workers, and require byte-identical results.
# Also checks the point-cache advisory lock, the quorum readiness gate,
# the cluster metrics, and an rrload burst against the coordinator.
# Run via `make cluster-smoke`.
set -euo pipefail

BASE_PORT="${RRCLUSTER_BASE_PORT:-18440}"
SINGLE="127.0.0.1:$BASE_PORT"
W1="127.0.0.1:$((BASE_PORT + 1))"
W2="127.0.0.1:$((BASE_PORT + 2))"
W3="127.0.0.1:$((BASE_PORT + 3))"
COORD="127.0.0.1:$((BASE_PORT + 4))"
TMP="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

REQUEST='{"experiment":"figure5","seed":1,"scale":"quick","f":[32,64],"r":[8,32],"l":[16]}'

wait_ready() { # addr [tries]
    local addr=$1 tries=${2:-50} i
    for i in $(seq 1 "$tries"); do
        if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "daemon at $addr never became ready" >&2
    return 1
}

run_job() { # addr outfile — submit REQUEST, poll to done, extract the result object
    local addr=$1 out=$2 id state status
    status=$(curl -fsS -X POST "http://$addr/v1/jobs" -d "$REQUEST")
    id=$(printf '%s\n' "$status" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
    [ -n "$id" ] || { echo "submit to $addr returned no job id: $status" >&2; return 1; }
    for _ in $(seq 1 300); do
        status=$(curl -fsS "http://$addr/v1/jobs/$id")
        state=$(printf '%s\n' "$status" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1)
        case "$state" in
            done) printf '%s\n' "$status" | sed -n '/"result": {/,$p' > "$out"; return 0 ;;
            failed|canceled) echo "job $id on $addr ended $state: $status" >&2; return 1 ;;
        esac
        sleep 0.2
    done
    echo "job $id on $addr never finished" >&2
    return 1
}

stop_daemon() { # pid
    kill -TERM "$1" 2>/dev/null || true
    local waited=0
    while kill -0 "$1" 2>/dev/null; do
        sleep 0.2
        waited=$((waited + 1))
        [ "$waited" -lt 150 ] || { echo "daemon $1 did not exit within 30s of SIGTERM" >&2; return 1; }
    done
    return 0
}

echo "== building rrserved + rrload"
go build -o "$TMP/rrserved" ./cmd/rrserved
go build -o "$TMP/rrload" ./cmd/rrload

echo "== phase 1: single-node baseline on $SINGLE"
mkdir -p "$TMP/points-single"
"$TMP/rrserved" -addr "$SINGLE" -workers 2 -point-cache-dir "$TMP/points-single" &
SINGLE_PID=$!
PIDS+=("$SINGLE_PID")
wait_ready "$SINGLE"

echo "== checking the point-cache advisory lock rejects a second daemon"
if "$TMP/rrserved" -addr "127.0.0.1:$((BASE_PORT + 9))" -point-cache-dir "$TMP/points-single" \
        2>"$TMP/lock-err.txt"; then
    echo "second daemon on a locked point-cache dir should have failed" >&2
    exit 1
fi
grep -q 'locked by another process' "$TMP/lock-err.txt" \
    || { echo "missing lock diagnostic:"; cat "$TMP/lock-err.txt"; exit 1; } >&2

run_job "$SINGLE" "$TMP/single.json"
stop_daemon "$SINGLE_PID"

echo "== phase 2: 3 workers + coordinator"
for i in 1 2 3; do
    addr_var="W$i"
    mkdir -p "$TMP/points-w$i"
    "$TMP/rrserved" -addr "${!addr_var}" -role worker -workers 1 \
        -point-cache-dir "$TMP/points-w$i" &
    PIDS+=($!)
done
for i in 1 2 3; do addr_var="W$i"; wait_ready "${!addr_var}"; done

"$TMP/rrserved" -addr "$COORD" -role coordinator \
    -cluster-workers "http://$W1,http://$W2,http://$W3" \
    -cluster-quorum 2 -cluster-batch 2 -workers 2 &
COORD_PID=$!
PIDS+=("$COORD_PID")
wait_ready "$COORD"

run_job "$COORD" "$TMP/cluster.json"

echo "== comparing single-node vs cluster results"
diff "$TMP/single.json" "$TMP/cluster.json" \
    || { echo "cluster result differs from single-node result" >&2; exit 1; }
echo "   byte-identical ($(wc -c < "$TMP/cluster.json") bytes)"

echo "== verifying cluster metrics"
METRICS=$(curl -fsS "http://$COORD/metrics")
UP_COUNT=$(printf '%s\n' "$METRICS" | grep -c '^rrserve_cluster_worker_up{.*} 1$' || true)
[ "$UP_COUNT" -eq 3 ] || { echo "worker_up reports $UP_COUNT/3 healthy workers" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep -q '^rrserve_cluster_points_total [1-9]' \
    || { echo "coordinator accepted no points from the fleet" >&2; exit 1; }
printf '%s\n' "$METRICS" | grep -q '^rrserve_cluster_batch_seconds_count{' \
    || { echo "per-worker batch latency histogram missing" >&2; exit 1; }

echo "== rrload burst against the coordinator"
"$TMP/rrload" -addr "$COORD" -clients 8 -duration 2s -overlap 0.5 \
    -snapshot-label cluster-smoke -out "$TMP/load.json" > "$TMP/load-summary.txt"
grep -q '"label": *"cluster-smoke"' "$TMP/load.json" \
    || { echo "-snapshot-label did not name the snapshot" >&2; exit 1; }

echo "== draining the fleet"
stop_daemon "$COORD_PID"
for p in "${PIDS[@]}"; do
    [ "$p" = "$SINGLE_PID" ] || [ "$p" = "$COORD_PID" ] && continue
    stop_daemon "$p"
done

echo "cluster-smoke: OK"
