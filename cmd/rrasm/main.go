// Command rrasm assembles programs for the register relocation ISA and
// prints the encoded words alongside their disassembly.
//
// Usage:
//
//	rrasm file.s            # assemble and dump
//	rrasm -symbols file.s   # also print the symbol table
//	rrasm -runtime          # dump the kernel runtime (yield/load/unload)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"regreloc/internal/asm"
	"regreloc/internal/isa"
	"regreloc/internal/kernel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run implements the tool; it returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rrasm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		symbols = fs.Bool("symbols", false, "print the symbol table")
		runtime = fs.Bool("runtime", false, "assemble the kernel runtime instead of a file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var src string
	switch {
	case *runtime:
		src = kernel.RuntimeSource()
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "rrasm: %v\n", err)
			return 1
		}
		src = string(data)
	default:
		fs.Usage()
		return 2
	}

	prog, err := asm.Assemble(src)
	if err != nil {
		fmt.Fprintf(stderr, "rrasm: %v\n", err)
		return 1
	}

	// Invert the symbol table for annotation.
	byAddr := map[int][]string{}
	for name, addr := range prog.Symbols {
		byAddr[addr] = append(byAddr[addr], name)
	}
	for _, names := range byAddr {
		sort.Strings(names)
	}

	for addr, w := range prog.Words {
		for _, name := range byAddr[addr] {
			fmt.Fprintf(stdout, "%s:\n", name)
		}
		fmt.Fprintf(stdout, "%6d: %08x  %s\n", addr, uint32(w), isa.Disassemble(isa.Decode(w)))
	}

	if *symbols {
		fmt.Fprintln(stdout, "\nsymbols:")
		names := make([]string, 0, len(prog.Symbols))
		for name := range prog.Symbols {
			names = append(names, name)
		}
		sort.Slice(names, func(i, j int) bool { return prog.Symbols[names[i]] < prog.Symbols[names[j]] })
		for _, name := range names {
			fmt.Fprintf(stdout, "%6d  %s\n", prog.Symbols[name], name)
		}
	}
	return 0
}
