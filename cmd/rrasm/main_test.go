package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAssembleFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.s")
	os.WriteFile(path, []byte("start:\n movi r1, 5\n halt\n"), 0o644)
	var out, errOut strings.Builder
	if code := run([]string{"-symbols", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"start:", "movi r1, 5", "halt", "symbols:"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRuntimeDump(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-runtime"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	s := out.String()
	for _, want := range []string{"yield:", "unload_entry_64:", "load_entry_8:", "ldrrm r2"} {
		if !strings.Contains(s, want) {
			t.Errorf("runtime dump missing %q", want)
		}
	}
}

func TestErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit = %d", code)
	}
	if code := run([]string{"nonexistent.s"}, &out, &errOut); code != 1 {
		t.Errorf("missing file exit = %d", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.s")
	os.WriteFile(bad, []byte("bogus instruction\n"), 0o644)
	if code := run([]string{bad}, &out, &errOut); code != 1 {
		t.Errorf("bad source exit = %d", code)
	}
}
