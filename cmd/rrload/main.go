// Command rrload load-tests an rrserved daemon: N concurrent clients
// submit sweep jobs whose grids overlap by a configurable fraction
// (exercising the point store and single-flight coalescing the way
// production traffic would), at a target arrival rate or in a closed
// loop, for a fixed duration. It reports p50/p95/p99 submit latency,
// time-to-result, aggregate points/s, and the HTTP status mix — as a
// human summary and, with -out, as a JSON snapshot in the same
// array-of-snapshots format scripts/bench_json.sh writes, so load runs
// land in the same trajectory files as the Go benchmarks.
//
// Usage:
//
//	rrload -addr 127.0.0.1:8347 -clients 500 -overlap 0.5 -duration 30s
//	rrload -clients 100 -rate 200 -tenants 4 -label pr6-load -out BENCH_PR6.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// submitRecord is one client submission's outcome.
type submitRecord struct {
	submitNS int64 // POST round-trip
	ttrNS    int64 // submit → terminal state; -1 when not waited or not terminal
	status   int
	points   int // sweep cells the job addressed (from its plan)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rrload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8347", "rrserved address (host:port, or full http:// URL)")
		clients  = fs.Int("clients", 50, "concurrent client goroutines")
		duration = fs.Duration("duration", 30*time.Second, "how long to keep submitting")
		rate     = fs.Float64("rate", 0, "target aggregate submissions/s across all clients (0 = closed loop)")
		overlap  = fs.Float64("overlap", 0.5, "fraction of submissions drawn from a small shared grid pool (the rest are unique)")
		expID    = fs.String("experiment", "figure5", "experiment ID to submit")
		scale    = fs.String("scale", "quick", "sweep scale (quick or full)")
		fidelity = fs.String("fidelity", "", "measurement tier on every submission: sim, machine, analytic, or adaptive (empty = server default)")
		seed     = fs.Uint64("seed", 1, "base sweep seed")
		tenants  = fs.Int("tenants", 1, "distinct X-RR-Tenant identities cycled across clients")
		wait     = fs.Bool("wait", true, "poll each accepted job to a terminal state (time-to-result)")
		label    = fs.String("label", "rrload", "snapshot label for -out")
		snapLbl  = fs.String("snapshot-label", "", "snapshot label for -out; wins over -label (lets wrapper scripts pin a label without disturbing positional defaults)")
		out      = fs.String("out", "", "append a bench_json-style JSON snapshot to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *snapLbl != "" {
		*label = *snapLbl
	}
	if *clients < 1 || *duration <= 0 || *overlap < 0 || *overlap > 1 || *tenants < 1 {
		fmt.Fprintln(stderr, "rrload: need -clients >= 1, -duration > 0, -overlap in [0,1], -tenants >= 1")
		return 2
	}
	base := *addr
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	client := &http.Client{Timeout: 2 * time.Minute}
	if _, err := getJSON(client, base+"/readyz", nil); err != nil {
		fmt.Fprintf(stderr, "rrload: daemon not reachable at %s: %v\n", base, err)
		return 1
	}

	// Optional open-loop pacing: a token bucket filled at -rate.
	var tokens chan struct{}
	stopPacer := make(chan struct{})
	if *rate > 0 {
		tokens = make(chan struct{}, *clients)
		interval := time.Duration(float64(time.Second) / *rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					select {
					case tokens <- struct{}{}:
					default: // clients are saturated; drop the token
					}
				case <-stopPacer:
					return
				}
			}
		}()
	}

	gen := workload{expID: *expID, scale: *scale, fidelity: *fidelity, seed: *seed, overlap: *overlap}
	deadline := time.Now().Add(*duration)
	records := make([][]submitRecord, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			tenant := fmt.Sprintf("tenant%d", c%*tenants)
			for time.Now().Before(deadline) {
				if tokens != nil {
					select {
					case <-tokens:
					case <-time.After(time.Until(deadline)):
						return
					}
				}
				rec := submitOne(client, base, gen.next(rng, c), tenant, *wait, deadline)
				records[c] = append(records[c], rec)
			}
		}(c)
	}
	wg.Wait()
	close(stopPacer)
	elapsed := time.Since(start)

	var all []submitRecord
	for _, rs := range records {
		all = append(all, rs...)
	}
	if len(all) == 0 {
		fmt.Fprintln(stderr, "rrload: no submissions completed")
		return 1
	}
	sum := summarize(all, elapsed, *clients, *overlap)
	fmt.Fprint(stdout, sum.human())
	if *out != "" {
		if err := appendSnapshot(*out, *label, sum); err != nil {
			fmt.Fprintf(stderr, "rrload: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "rrload: appended snapshot %q to %s\n", *label, *out)
	}
	return 0
}

// workload generates the request mix: a small pool of canonical grids
// that `overlap` of submissions repeat (hitting the report cache, the
// point store, and single-flight coalescing), and unique grids for the
// rest (forcing cold simulation). Pool grids share F/R axes so even
// distinct pool entries overlap at the point level.
type workload struct {
	expID    string
	scale    string
	fidelity string
	seed     uint64
	overlap  float64
	uniq     atomic.Uint64
}

// wireRequest mirrors serve.Request's wire format; rrload speaks only
// HTTP so the serve package is not imported.
type wireRequest struct {
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Scale      string `json:"scale,omitempty"`
	Fidelity   string `json:"fidelity,omitempty"`
	F          []int  `json:"f,omitempty"`
	R          []int  `json:"r,omitempty"`
	L          []int  `json:"l,omitempty"`
}

var poolGrids = [8]struct{ f, r, l []int }{
	{[]int{32, 64}, []int{8}, []int{16}},
	{[]int{32, 64}, []int{16}, []int{16}},
	{[]int{64, 128}, []int{8}, []int{16}},
	{[]int{64, 128}, []int{16}, []int{16}},
	{[]int{32, 64, 128}, []int{8}, []int{16}},
	{[]int{32, 64, 128}, []int{16}, []int{16}},
	{[]int{32, 64}, []int{8, 16}, []int{16}},
	{[]int{64, 128}, []int{8, 16}, []int{16}},
}

func (w *workload) next(rng *rand.Rand, client int) wireRequest {
	req := wireRequest{Experiment: w.expID, Seed: w.seed, Scale: w.scale, Fidelity: w.fidelity}
	if rng.Float64() < w.overlap {
		g := poolGrids[rng.Intn(len(poolGrids))]
		req.F, req.R, req.L = g.f, g.r, g.l
		return req
	}
	// Unique: a never-repeated seed makes the cache key (and every
	// point key) cold.
	req.Seed = w.seed + 1000 + w.uniq.Add(1)
	g := poolGrids[client%len(poolGrids)]
	req.F, req.R, req.L = g.f, g.r, g.l
	return req
}

// submitOne POSTs a job and (optionally) polls it to a terminal state.
func submitOne(client *http.Client, base string, req wireRequest, tenant string, wait bool, deadline time.Time) submitRecord {
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return submitRecord{status: -1, ttrNS: -1}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("X-RR-Tenant", tenant)
	t0 := time.Now()
	resp, err := client.Do(hreq)
	if err != nil {
		return submitRecord{status: -1, ttrNS: -1}
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Plan  *struct {
			Points int `json:"points"`
		} `json:"plan"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&st)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rec := submitRecord{submitNS: int64(time.Since(t0)), status: resp.StatusCode, ttrNS: -1}
	if decErr != nil || (resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated) {
		return rec
	}
	if st.Plan != nil {
		rec.points = st.Plan.Points
	}
	if !wait {
		return rec
	}
	// Poll to a terminal state; grant a grace window past the load
	// deadline so accepted jobs still report their time-to-result.
	grace := deadline.Add(time.Minute)
	for {
		if terminalState(st.State) {
			rec.ttrNS = int64(time.Since(t0))
			return rec
		}
		if time.Now().After(grace) {
			return rec
		}
		time.Sleep(5 * time.Millisecond)
		if _, err := getJSON(client, base+"/v1/jobs/"+st.ID, &st); err != nil {
			return rec
		}
	}
}

func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "canceled"
}

func getJSON(client *http.Client, url string, v any) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			return resp.StatusCode, err
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// summary is the aggregated run outcome.
type summary struct {
	clients   int
	overlap   float64
	elapsed   time.Duration
	submits   int
	accepted  int
	statuses  map[int]int
	submitP   [3]time.Duration // p50, p95, p99
	meanNS    float64          // mean submit latency
	ttrP      [3]time.Duration
	ttrCount  int
	points    int64
	jobsPerS  float64
	pointPerS float64
}

func summarize(all []submitRecord, elapsed time.Duration, clients int, overlap float64) summary {
	s := summary{clients: clients, overlap: overlap, elapsed: elapsed,
		submits: len(all), statuses: make(map[int]int)}
	var submitNS, ttrNS []int64
	for _, r := range all {
		s.statuses[r.status]++
		if r.status == http.StatusOK || r.status == http.StatusCreated {
			s.accepted++
		}
		submitNS = append(submitNS, r.submitNS)
		if r.ttrNS >= 0 {
			ttrNS = append(ttrNS, r.ttrNS)
			s.points += int64(r.points)
		}
	}
	var totalNS int64
	for _, ns := range submitNS {
		totalNS += ns
	}
	s.meanNS = float64(totalNS) / float64(len(submitNS))
	s.submitP = percentiles(submitNS)
	s.ttrP = percentiles(ttrNS)
	s.ttrCount = len(ttrNS)
	secs := elapsed.Seconds()
	if secs > 0 {
		s.jobsPerS = float64(s.accepted) / secs
		s.pointPerS = float64(s.points) / secs
	}
	return s
}

// percentiles returns p50/p95/p99 of ns samples (zeros when empty).
func percentiles(ns []int64) [3]time.Duration {
	var out [3]time.Duration
	if len(ns) == 0 {
		return out
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	pick := func(q float64) time.Duration {
		i := int(q * float64(len(ns)-1))
		return time.Duration(ns[i])
	}
	return [3]time.Duration{pick(0.50), pick(0.95), pick(0.99)}
}

func (s summary) human() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rrload: %d clients, %.0f%% overlap, %.1fs\n",
		s.clients, s.overlap*100, s.elapsed.Seconds())
	fmt.Fprintf(&b, "  submits   %d (%.1f accepted/s)\n", s.submits, s.jobsPerS)
	var codes []int
	for c := range s.statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		name := "transport-error"
		if c > 0 {
			name = fmt.Sprintf("HTTP %d", c)
		}
		fmt.Fprintf(&b, "  %-16s %d\n", name, s.statuses[c])
	}
	fmt.Fprintf(&b, "  submit latency  p50 %v  p95 %v  p99 %v\n", s.submitP[0], s.submitP[1], s.submitP[2])
	if s.ttrCount > 0 {
		fmt.Fprintf(&b, "  time-to-result  p50 %v  p95 %v  p99 %v  (%d jobs)\n", s.ttrP[0], s.ttrP[1], s.ttrP[2], s.ttrCount)
		fmt.Fprintf(&b, "  throughput      %.0f points/s\n", s.pointPerS)
	}
	return b.String()
}

// snapshot mirrors the array-of-snapshots layout scripts/bench_json.sh
// maintains, so rrload runs append into the same trajectory files.
type snapshot struct {
	Label      string      `json:"label"`
	Goos       string      `json:"goos"`
	Goarch     string      `json:"goarch"`
	CPU        string      `json:"cpu"`
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics"`
}

func appendSnapshot(path, label string, s summary) error {
	metrics := map[string]float64{
		"submit_p50_ms": float64(s.submitP[0]) / 1e6,
		"submit_p95_ms": float64(s.submitP[1]) / 1e6,
		"submit_p99_ms": float64(s.submitP[2]) / 1e6,
		"jobs/s":        s.jobsPerS,
		"points/s":      s.pointPerS,
		"clients":       float64(s.clients),
		"overlap":       s.overlap,
	}
	if s.ttrCount > 0 {
		metrics["ttr_p50_ms"] = float64(s.ttrP[0]) / 1e6
		metrics["ttr_p95_ms"] = float64(s.ttrP[1]) / 1e6
		metrics["ttr_p99_ms"] = float64(s.ttrP[2]) / 1e6
	}
	for code, n := range s.statuses {
		name := "status_err"
		if code > 0 {
			name = fmt.Sprintf("status_%d", code)
		}
		metrics[name] = float64(n)
	}
	snap := snapshot{
		Label: label, Goos: runtime.GOOS, Goarch: runtime.GOARCH, CPU: cpuModel(),
		Benchmarks: []benchmark{{
			Name:       "ServeLoad",
			Iterations: s.submits,
			// ns_per_op is the mean submit latency, the closest analogue
			// of a Go benchmark's per-op cost.
			NsPerOp: s.meanNS,
			Metrics: metrics,
		}},
	}

	var snaps []json.RawMessage
	if raw, err := os.ReadFile(path); err == nil && len(bytes.TrimSpace(raw)) > 0 {
		if err := json.Unmarshal(raw, &snaps); err != nil {
			return fmt.Errorf("%s exists but is not a snapshot array: %w", path, err)
		}
	}
	enc, err := json.MarshalIndent(snap, "  ", " ")
	if err != nil {
		return err
	}
	snaps = append(snaps, enc)
	var out bytes.Buffer
	out.WriteString("[\n")
	for i, r := range snaps {
		out.WriteString("  ")
		out.Write(bytes.TrimSpace(r))
		if i < len(snaps)-1 {
			out.WriteString(",")
		}
		out.WriteString("\n")
	}
	out.WriteString("]\n")
	return os.WriteFile(path, out.Bytes(), 0o644)
}

// cpuModel best-effort reads the CPU model name for snapshot metadata,
// matching the "cpu:" line Go benchmarks print.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, val, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return runtime.GOARCH
}
