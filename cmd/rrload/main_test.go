package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"regreloc/internal/serve"
)

// TestLoadSmoke drives a short rrload run against an in-process serve
// daemon and checks the human summary and JSON snapshot both land.
func TestLoadSmoke(t *testing.T) {
	s := newTestDaemon(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "load.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL,
		"-clients", "8",
		"-duration", "500ms",
		"-overlap", "0.5",
		"-tenants", "2",
		"-label", "smoke",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("rrload exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	human := stdout.String()
	for _, want := range []string{"submits", "submit latency", "p50", "p95", "p99"} {
		if !strings.Contains(human, want) {
			t.Errorf("summary missing %q:\n%s", want, human)
		}
	}

	var snaps []snapshot
	raw := readFile(t, out)
	if err := json.Unmarshal(raw, &snaps); err != nil {
		t.Fatalf("snapshot file not a JSON array: %v\n%s", err, raw)
	}
	if len(snaps) != 1 || snaps[0].Label != "smoke" {
		t.Fatalf("snapshots = %+v, want one labeled smoke", snaps)
	}
	b := snaps[0].Benchmarks
	if len(b) != 1 || b[0].Name != "ServeLoad" {
		t.Fatalf("benchmarks = %+v", b)
	}
	if b[0].Iterations < 1 || b[0].NsPerOp <= 0 {
		t.Errorf("empty load run recorded: %+v", b[0])
	}
	for _, m := range []string{"submit_p50_ms", "submit_p95_ms", "submit_p99_ms", "jobs/s", "points/s"} {
		if _, ok := b[0].Metrics[m]; !ok {
			t.Errorf("snapshot missing metric %q: %v", m, b[0].Metrics)
		}
	}
	accepted := b[0].Metrics["status_200"] + b[0].Metrics["status_201"]
	if accepted < 1 {
		t.Errorf("no accepted submissions: %v", b[0].Metrics)
	}

	// A second run appends rather than overwrites.
	code = run([]string{"-addr", ts.URL, "-clients", "2", "-duration", "200ms",
		"-label", "smoke2", "-out", out}, io.Discard, &stderr)
	if code != 0 {
		t.Fatalf("second run exited %d: %s", code, stderr.String())
	}
	snaps = nil
	if err := json.Unmarshal(readFile(t, out), &snaps); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[1].Label != "smoke2" {
		t.Fatalf("append failed: %d snapshots, labels %v", len(snaps), snaps)
	}
}

// TestLoadBadFlags pins flag validation without a daemon.
func TestLoadBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-clients", "0"}, io.Discard, &stderr); code != 2 {
		t.Errorf("bad -clients exited %d, want 2", code)
	}
	if code := run([]string{"-overlap", "1.5"}, io.Discard, &stderr); code != 2 {
		t.Errorf("bad -overlap exited %d, want 2", code)
	}
	// Unreachable daemon fails fast with exit 1, not a hang.
	if code := run([]string{"-addr", "127.0.0.1:1", "-duration", "1s"}, io.Discard, &stderr); code != 1 {
		t.Errorf("unreachable daemon exited %d, want 1", code)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func newTestDaemon(t *testing.T) *serve.Server {
	t.Helper()
	s, err := serve.New(serve.Config{
		QueueCap:     64,
		Workers:      4,
		PointWorkers: 2,
		JobTimeout:   time.Minute,
		Logger:       log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s
}
