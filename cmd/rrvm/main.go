// Command rrvm runs an assembled program on the instruction-level
// register relocation machine.
//
// Usage:
//
//	rrvm [-regs 128] [-mode or] [-rrm 0] [-delay 1] [-max 1000000]
//	     [-trace] [-dump 0:16] file.s
//
// The program is loaded at address 0 and executed until HALT, an
// exception, or the cycle budget. On exit the cycle count and the
// requested register range are printed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"regreloc/internal/asm"
	"regreloc/internal/isa"
	"regreloc/internal/machine"
	"regreloc/internal/regfile"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run implements the tool; it returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rrvm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		regs    = fs.Int("regs", 128, "register file size")
		mode    = fs.String("mode", "or", "relocation mode: or, add, mux, bounded")
		rrm     = fs.Int("rrm", 0, "initial register relocation mask")
		delay   = fs.Int("delay", 1, "LDRRM delay slots")
		max     = fs.Int64("max", 1_000_000, "cycle budget")
		traceOn = fs.Bool("trace", false, "trace every instruction")
		dump    = fs.String("dump", "0:16", "register range to dump, lo:hi")
		multi   = fs.Bool("multirrm", false, "enable the multiple-RRM extension")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	modes := map[string]regfile.Mode{
		"or": regfile.ModeOR, "add": regfile.ModeADD,
		"mux": regfile.ModeMUX, "bounded": regfile.ModeBounded,
	}
	m, ok := modes[*mode]
	if !ok {
		fmt.Fprintf(stderr, "rrvm: unknown mode %q\n", *mode)
		return 2
	}

	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "rrvm: %v\n", err)
		return 1
	}
	prog, err := asm.Assemble(string(data))
	if err != nil {
		fmt.Fprintf(stderr, "rrvm: %v\n", err)
		return 1
	}

	vm := machine.New(machine.Config{
		Registers:       *regs,
		Mode:            m,
		LDRRMDelaySlots: *delay,
		MultiRRM:        *multi,
	})
	vm.Load(prog, 0)
	vm.RF.SetRRM(*rrm)
	if *traceOn {
		vm.Trace = func(pc int, in isa.Instr) {
			fmt.Fprintf(stdout, "%8d  pc=%-5d rrm=%-3d %s\n", vm.Cycles(), pc, vm.RF.RRM(), isa.Disassemble(in))
		}
	}

	runErr := vm.Run(*max)
	fmt.Fprintf(stdout, "cycles: %d  halted: %v\n", vm.Cycles(), vm.Halted())
	if runErr != nil {
		fmt.Fprintf(stdout, "stopped: %v\n", runErr)
	}

	lo, hi := 0, 16
	if parts := strings.SplitN(*dump, ":", 2); len(parts) == 2 {
		if v, err := strconv.Atoi(parts[0]); err == nil {
			lo = v
		}
		if v, err := strconv.Atoi(parts[1]); err == nil {
			hi = v
		}
	}
	if lo < 0 {
		lo = 0
	}
	if hi > vm.RF.Size() {
		hi = vm.RF.Size()
	}
	for r := lo; r < hi; r++ {
		fmt.Fprintf(stdout, "r%-3d = %d\n", r, vm.RF.Read(r))
	}
	if runErr != nil {
		return 1
	}
	return 0
}
