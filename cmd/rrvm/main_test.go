package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.s")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProgram(t *testing.T) {
	path := writeProg(t, "movi r1, 5\nmovi r2, 7\nadd r3, r1, r2\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-dump", "0:4", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "halted: true") || !strings.Contains(s, "r3   = 12") {
		t.Errorf("output:\n%s", s)
	}
}

func TestRRMFlag(t *testing.T) {
	path := writeProg(t, "movi r1, 9\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-rrm", "32", "-dump", "32:34", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "r33  = 9") {
		t.Errorf("relocated run output:\n%s", out.String())
	}
}

func TestTraceFlag(t *testing.T) {
	path := writeProg(t, "movi r1, 1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-trace", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "pc=0") || !strings.Contains(out.String(), "movi r1, 1") {
		t.Errorf("trace output:\n%s", out.String())
	}
}

func TestBudgetExhaustionExitsOne(t *testing.T) {
	path := writeProg(t, "loop: beq r0, r0, loop\n")
	var out, errOut strings.Builder
	if code := run([]string{"-max", "10", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "budget") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestModeFlag(t *testing.T) {
	path := writeProg(t, "halt\n")
	var out, errOut strings.Builder
	for _, m := range []string{"or", "add", "mux", "bounded"} {
		if code := run([]string{"-mode", m, path}, &out, &errOut); code != 0 {
			t.Errorf("mode %s exit %d", m, code)
		}
	}
	if code := run([]string{"-mode", "quantum", path}, &out, &errOut); code != 2 {
		t.Errorf("bad mode exit %d", code)
	}
}

func TestUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit %d", code)
	}
	if code := run([]string{"nonexistent.s"}, &out, &errOut); code != 1 {
		t.Errorf("missing file exit %d", code)
	}
}

func TestShippedFibProgram(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dump", "4:5", "../../examples/programs/fib.s"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "r4   = 55") {
		t.Errorf("fib(10) output:\n%s", out.String())
	}
	// Relocated, the result lands at the relocated register.
	out.Reset()
	if code := run([]string{"-rrm", "64", "-dump", "68:69", "../../examples/programs/fib.s"}, &out, &errOut); code != 0 {
		t.Fatalf("relocated exit %d", code)
	}
	if !strings.Contains(out.String(), "r68  = 55") {
		t.Errorf("relocated fib output:\n%s", out.String())
	}
}

func TestShippedPingPongProgram(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dump", "0:40", "../../examples/programs/pingpong.s"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "halted: true") {
		t.Fatalf("did not halt:\n%s", s)
	}
	// Both contexts counted to the limit: A.r1 is absolute register 1,
	// B.r1 is absolute register 33.
	if !strings.Contains(s, "r1   = 10") || !strings.Contains(s, "r33  = 10") {
		t.Errorf("counters:\n%s", s)
	}
}
