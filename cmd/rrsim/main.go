// Command rrsim regenerates the paper's tables and figures.
//
// Usage:
//
//	rrsim -list
//	rrsim -experiment figure5 [-seed 1] [-scale full] [-format table]
//	rrsim -experiment figure6 -format plot -panel F=128
//	rrsim -experiment all -format summary
//	rrsim -experiment figure5 -parallel 4   # bound the sweep worker pool
//	rrsim -experiment figure5 -pointcache ~/.cache/rrsim  # reuse sweep points across runs
//	rrsim -experiment figure5 -cpuprofile cpu.pprof -memprofile mem.pprof
//	rrsim -experiment figure5 -mutexprofile mutex.pprof -blockprofile block.pprof
//
// Formats: table (default), plot (requires -panel or plots every
// panel), csv, summary.
//
// Sweep points run concurrently on one worker per core by default;
// -parallel bounds the pool (1 forces sequential execution). Results
// are identical at every setting: each point's RNG stream is derived
// from the seed and the point's coordinates, not from execution order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"regreloc/internal/experiment"
	"regreloc/internal/pointstore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// writeLookupProfile dumps a named runtime profile (mutex, block) to
// path; failures are reported, not fatal — the run's real output
// already happened.
func writeLookupProfile(stderr io.Writer, name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "rrsim: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(stderr, "rrsim: writing %s profile: %v\n", name, err)
	}
}

// run implements the tool; it returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rrsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list the reproducible experiments")
		expID    = fs.String("experiment", "", "experiment to run (or \"all\")")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		scale    = fs.String("scale", "full", "quick or full")
		format   = fs.String("format", "table", "table, plot, csv, or summary")
		panel    = fs.String("panel", "", "panel for -format plot (e.g. F=128); empty plots all")
		outDir   = fs.String("o", "", "also write <experiment>.csv files into this directory")
		parallel = fs.Int("parallel", 0, "sweep-point workers: 0 = one per core, 1 = sequential")
		fidelity = fs.String("fidelity", "sim", "measurement tier: sim, machine, or analytic (grid experiments only for non-sim)")
		ptCache  = fs.String("pointcache", "", "directory memoizing per-point results across runs (incremental sweeps)")
		ptShards = fs.Int("pointcache-shards", 0, "point-cache shard count, rounded up to a power of two (0 = sized to GOMAXPROCS)")
		ptQueue  = fs.Int("pointcache-spill-queue", 0, "max point-cache entries queued for background disk spill (0 = default)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
		mtxProf  = fs.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		blkProf  = fs.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "rrsim: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "rrsim: starting CPU profile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "rrsim: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live objects, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "rrsim: writing heap profile: %v\n", err)
			}
		}()
	}
	// Lock-contention profiles: collection is off by default in the
	// runtime (it costs a few percent), so it is enabled only for the
	// lifetime of a profiled run. See docs/performance.md, "Diagnosing
	// lock contention".
	if *mtxProf != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeLookupProfile(stderr, "mutex", *mtxProf)
	}
	if *blkProf != "" {
		runtime.SetBlockProfileRate(1)
		defer writeLookupProfile(stderr, "block", *blkProf)
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Title)
			fmt.Fprintf(stdout, "%-18s   %s\n", "", e.Description)
		}
		return 0
	}
	if *expID == "" {
		fs.Usage()
		return 2
	}

	var sc experiment.Scale
	switch *scale {
	case "quick":
		sc = experiment.Quick
	case "full":
		sc = experiment.Full
	default:
		fmt.Fprintf(stderr, "rrsim: unknown scale %q\n", *scale)
		return 2
	}
	if *parallel < 0 {
		fmt.Fprintf(stderr, "rrsim: -parallel must be >= 0, got %d\n", *parallel)
		return 2
	}
	sc.Workers = *parallel
	fid, err := experiment.ParseFidelity(*fidelity)
	if err != nil {
		fmt.Fprintf(stderr, "rrsim: %v\n", err)
		return 2
	}
	sc.Fidelity = fid

	// -pointcache memoizes individual sweep points on disk, so rerunning
	// after an interrupted or partially overlapping sweep only simulates
	// the cells that changed. Sound because a point's bytes are a pure
	// function of its content address (engine version included).
	var store *pointstore.Store
	if *ptCache != "" {
		var err error
		store, err = pointstore.NewWith(64<<20, *ptCache, pointstore.Options{
			Shards:     *ptShards,
			SpillQueue: *ptQueue,
		})
		if err != nil {
			fmt.Fprintf(stderr, "rrsim: %v\n", err)
			return 1
		}
		sc.PointStore = store
		defer func() {
			if err := store.SaveIndex(); err != nil {
				fmt.Fprintf(stderr, "rrsim: saving point cache index: %v\n", err)
			}
			c := store.Counters()
			fmt.Fprintf(stderr, "rrsim: point cache: %d hits, %d misses (%d entries in memory, %d on disk)\n",
				c.Hits, c.Misses, store.Len(), store.DiskLen())
			store.Close() // release the cache dir's advisory lock
		}()
	}

	var exps []experiment.Experiment
	if *expID == "all" {
		exps = experiment.All()
	} else {
		e, ok := experiment.Get(*expID)
		if !ok {
			fmt.Fprintf(stderr, "rrsim: unknown experiment %q; use -list\n", *expID)
			return 2
		}
		exps = []experiment.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "rrsim: creating output directory: %v\n", err)
			return 1
		}
	}

	for _, e := range exps {
		// Non-sim tiers flow through the grid sweep engine; experiments
		// that build their own measurement closures would silently
		// ignore the tier, so refuse (or skip, under -experiment all)
		// rather than mislabel simulator output.
		if fid != experiment.FidelitySim && e.RunGrid == nil {
			if *expID == "all" {
				fmt.Fprintf(stderr, "rrsim: %s: skipped (fidelity %s requires a grid sweep)\n", e.ID, fid)
				continue
			}
			fmt.Fprintf(stderr, "rrsim: %s is not a grid sweep; fidelity %s requires one\n", e.ID, fid)
			return 2
		}
		// Live progress (throttled) plus a wall-time summary per
		// experiment, both on stderr so piped output stays clean. The
		// hook rides on the per-run Scale, so concurrent runs (none
		// today) could not interleave their updates.
		start := time.Now()
		lastUpdate := start
		runScale := sc
		runScale.Progress = func(done, total int) {
			if time.Since(lastUpdate) < time.Second || done == total {
				return
			}
			lastUpdate = time.Now()
			fmt.Fprintf(stderr, "rrsim: %s: %d/%d points (%.1f points/s)\n",
				e.ID, done, total, float64(done)/time.Since(start).Seconds())
		}
		report := e.Run(*seed, runScale)
		if report.Err != nil {
			fmt.Fprintf(stderr, "rrsim: %s: interrupted: %v\n", e.ID, report.Err)
			return 1
		}
		if secs := time.Since(start).Seconds(); len(report.Points) > 0 && secs > 0 {
			fmt.Fprintf(stderr, "rrsim: %s: %d points in %.2fs (%.1f points/s)\n",
				e.ID, len(report.Points), secs, float64(len(report.Points))/secs)
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, report.ID+".csv")
			if err := os.WriteFile(path, []byte(experiment.CSV(report)), 0o644); err != nil {
				fmt.Fprintf(stderr, "rrsim: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
		switch *format {
		case "table":
			fmt.Fprint(stdout, experiment.Table(report))
			if s := experiment.Summary(report); s != "" {
				fmt.Fprintf(stdout, "\nsummary:\n%s", s)
			}
		case "plot":
			panels := report.Panels()
			if *panel != "" {
				panels = []string{*panel}
			}
			for _, p := range panels {
				fmt.Fprintln(stdout, experiment.Plot(report, p))
			}
		case "csv":
			fmt.Fprint(stdout, experiment.CSV(report))
		case "summary":
			fmt.Fprintf(stdout, "== %s ==\n%s", report.Title, experiment.Summary(report))
			for _, n := range report.Notes {
				fmt.Fprintf(stdout, "   %s\n", n)
			}
		default:
			fmt.Fprintf(stderr, "rrsim: unknown format %q\n", *format)
			return 2
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
