// Command rrsim regenerates the paper's tables and figures.
//
// Usage:
//
//	rrsim -list
//	rrsim -experiment figure5 [-seed 1] [-scale full] [-format table]
//	rrsim -experiment figure6 -format plot -panel F=128
//	rrsim -experiment all -format summary
//
// Formats: table (default), plot (requires -panel or plots every
// panel), csv, summary.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"regreloc/internal/experiment"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run implements the tool; it returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rrsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list   = fs.Bool("list", false, "list the reproducible experiments")
		expID  = fs.String("experiment", "", "experiment to run (or \"all\")")
		seed   = fs.Uint64("seed", 1, "simulation seed")
		scale  = fs.String("scale", "full", "quick or full")
		format = fs.String("format", "table", "table, plot, csv, or summary")
		panel  = fs.String("panel", "", "panel for -format plot (e.g. F=128); empty plots all")
		outDir = fs.String("o", "", "also write <experiment>.csv files into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(stdout, "%-18s %s\n", e.ID, e.Title)
			fmt.Fprintf(stdout, "%-18s   %s\n", "", e.Description)
		}
		return 0
	}
	if *expID == "" {
		fs.Usage()
		return 2
	}

	var sc experiment.Scale
	switch *scale {
	case "quick":
		sc = experiment.Quick
	case "full":
		sc = experiment.Full
	default:
		fmt.Fprintf(stderr, "rrsim: unknown scale %q\n", *scale)
		return 2
	}

	var exps []experiment.Experiment
	if *expID == "all" {
		exps = experiment.All()
	} else {
		e, ok := experiment.Get(*expID)
		if !ok {
			fmt.Fprintf(stderr, "rrsim: unknown experiment %q; use -list\n", *expID)
			return 2
		}
		exps = []experiment.Experiment{e}
	}

	for _, e := range exps {
		report := e.Run(*seed, sc)
		if *outDir != "" {
			path := filepath.Join(*outDir, report.ID+".csv")
			if err := os.WriteFile(path, []byte(experiment.CSV(report)), 0o644); err != nil {
				fmt.Fprintf(stderr, "rrsim: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
		}
		switch *format {
		case "table":
			fmt.Fprint(stdout, experiment.Table(report))
			if s := experiment.Summary(report); s != "" {
				fmt.Fprintf(stdout, "\nsummary:\n%s", s)
			}
		case "plot":
			panels := report.Panels()
			if *panel != "" {
				panels = []string{*panel}
			}
			for _, p := range panels {
				fmt.Fprintln(stdout, experiment.Plot(report, p))
			}
		case "csv":
			fmt.Fprint(stdout, experiment.CSV(report))
		case "summary":
			fmt.Fprintf(stdout, "== %s ==\n%s", report.Title, experiment.Summary(report))
			for _, n := range report.Notes {
				fmt.Fprintf(stdout, "   %s\n", n)
			}
		default:
			fmt.Fprintf(stderr, "rrsim: unknown format %q\n", *format)
			return 2
		}
		fmt.Fprintln(stdout)
	}
	return 0
}
