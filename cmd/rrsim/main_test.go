package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"figure5", "figure6", "figure3", "cache-interference"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunFigure3(t *testing.T) {
	// figure3 is scale-independent and fast: a good end-to-end check.
	var out, errOut strings.Builder
	if code := run([]string{"-experiment", "figure3", "-scale", "quick"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "measured context switch: 5.00 cycles") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestFormats(t *testing.T) {
	for _, format := range []string{"table", "plot", "csv", "summary"} {
		var out, errOut strings.Builder
		code := run([]string{"-experiment", "figure4", "-scale", "quick", "-format", format}, &out, &errOut)
		if code != 0 {
			t.Errorf("format %s exit %d", format, code)
		}
		if out.Len() == 0 {
			t.Errorf("format %s produced nothing", format)
		}
	}
}

func TestErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit %d", code)
	}
	if code := run([]string{"-experiment", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("unknown experiment exit %d", code)
	}
	if code := run([]string{"-experiment", "figure3", "-scale", "galactic"}, &out, &errOut); code != 2 {
		t.Errorf("bad scale exit %d", code)
	}
	if code := run([]string{"-experiment", "figure3", "-format", "interpretive-dance"}, &out, &errOut); code != 2 {
		t.Errorf("bad format exit %d", code)
	}
}

func TestCSVOutputDir(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	if code := run([]string{"-experiment", "figure4", "-scale", "quick", "-o", dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "experiment,panel,arch") {
		t.Errorf("csv = %q", string(data)[:40])
	}
	if code := run([]string{"-experiment", "figure4", "-scale", "quick", "-o", filepath.Join(dir, "missing", "sub")}, &out, &errOut); code != 1 {
		t.Errorf("unwritable dir exit %d", code)
	}
}
