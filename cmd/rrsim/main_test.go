package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"figure5", "figure6", "figure3", "cache-interference"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestRunFigure3(t *testing.T) {
	// figure3 is scale-independent and fast: a good end-to-end check.
	var out, errOut strings.Builder
	if code := run([]string{"-experiment", "figure3", "-scale", "quick"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "measured context switch: 5.00 cycles") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestFormats(t *testing.T) {
	for _, format := range []string{"table", "plot", "csv", "summary"} {
		var out, errOut strings.Builder
		code := run([]string{"-experiment", "figure4", "-scale", "quick", "-format", format}, &out, &errOut)
		if code != 0 {
			t.Errorf("format %s exit %d", format, code)
		}
		if out.Len() == 0 {
			t.Errorf("format %s produced nothing", format)
		}
	}
}

func TestErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit %d", code)
	}
	if code := run([]string{"-experiment", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("unknown experiment exit %d", code)
	}
	if code := run([]string{"-experiment", "figure3", "-scale", "galactic"}, &out, &errOut); code != 2 {
		t.Errorf("bad scale exit %d", code)
	}
	if code := run([]string{"-experiment", "figure3", "-format", "interpretive-dance"}, &out, &errOut); code != 2 {
		t.Errorf("bad format exit %d", code)
	}
	if code := run([]string{"-experiment", "figure3", "-parallel", "-1"}, &out, &errOut); code != 2 {
		t.Errorf("negative -parallel exit %d", code)
	}
}

func TestParallelFlag(t *testing.T) {
	// The same experiment under different worker-pool bounds must print
	// identical results (per-point seed derivation makes execution order
	// irrelevant); the full determinism check lives in
	// internal/experiment.
	var seq, par, errOut strings.Builder
	if code := run([]string{"-experiment", "figure4", "-scale", "quick", "-format", "csv", "-parallel", "1"}, &seq, &errOut); code != 0 {
		t.Fatalf("sequential exit %d: %s", code, errOut.String())
	}
	if code := run([]string{"-experiment", "figure4", "-scale", "quick", "-format", "csv", "-parallel", "4"}, &par, &errOut); code != 0 {
		t.Fatalf("parallel exit %d: %s", code, errOut.String())
	}
	if seq.String() != par.String() {
		t.Errorf("-parallel changed the output:\nseq:\n%s\npar:\n%s", seq.String(), par.String())
	}
}

// TestPointCacheFlag runs the same cheap sweep twice against one
// -pointcache directory: identical output both times, with the second
// run served entirely from the persisted point store.
func TestPointCacheFlag(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-experiment", "ablation-policy", "-scale", "quick", "-format", "csv", "-pointcache", dir}
	var cold, warm, coldErr, warmErr strings.Builder
	if code := run(args, &cold, &coldErr); code != 0 {
		t.Fatalf("cold exit %d: %s", code, coldErr.String())
	}
	if !strings.Contains(coldErr.String(), "point cache: 0 hits") {
		t.Errorf("cold run stderr missing cache summary: %q", coldErr.String())
	}
	if code := run(args, &warm, &warmErr); code != 0 {
		t.Fatalf("warm exit %d: %s", code, warmErr.String())
	}
	if cold.String() != warm.String() {
		t.Errorf("-pointcache changed the output between runs:\ncold:\n%s\nwarm:\n%s",
			cold.String(), warm.String())
	}
	if !strings.Contains(warmErr.String(), "0 misses") {
		t.Errorf("warm run still simulated: %q", warmErr.String())
	}
}

func TestCSVOutputDir(t *testing.T) {
	dir := t.TempDir()
	var out, errOut strings.Builder
	if code := run([]string{"-experiment", "figure4", "-scale", "quick", "-o", dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "experiment,panel,arch") {
		t.Errorf("csv = %q", string(data)[:40])
	}
}

func TestCSVOutputDirCreated(t *testing.T) {
	// A missing -o directory (including parents) is created.
	dir := filepath.Join(t.TempDir(), "missing", "sub")
	var out, errOut strings.Builder
	if code := run([]string{"-experiment", "figure4", "-scale", "quick", "-o", dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "figure4.csv")); err != nil {
		t.Errorf("csv not written: %v", err)
	}
}

func TestCSVOutputDirInvalid(t *testing.T) {
	// An -o path routed through an existing file cannot be created; the
	// error must surface as a non-zero exit, not a silent run.
	dir := t.TempDir()
	file := filepath.Join(dir, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-experiment", "figure4", "-scale", "quick", "-o", filepath.Join(file, "sub")}, &out, &errOut); code != 1 {
		t.Errorf("invalid -o exit %d (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "output directory") {
		t.Errorf("error not surfaced: %q", errOut.String())
	}
}

// TestContentionProfileFlags checks that -mutexprofile and
// -blockprofile each produce a readable, non-empty pprof file on exit.
// The profile contents depend on runtime contention so only presence
// and non-emptiness are asserted.
func TestContentionProfileFlags(t *testing.T) {
	dir := t.TempDir()
	mtx := filepath.Join(dir, "mutex.pprof")
	blk := filepath.Join(dir, "block.pprof")
	var out, errOut strings.Builder
	args := []string{"-experiment", "figure4", "-scale", "quick", "-parallel", "2",
		"-mutexprofile", mtx, "-blockprofile", blk}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, path := range []string{mtx, blk} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s: empty profile", path)
		}
	}
}
