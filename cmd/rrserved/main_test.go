package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if got := run([]string{"-bogus"}, &buf, nil, nil); got != 2 {
		t.Errorf("bad flag exit = %d, want 2", got)
	}
	buf.Reset()
	if got := run([]string{"-queue", "0"}, &buf, nil, nil); got != 2 {
		t.Errorf("-queue 0 exit = %d, want 2", got)
	}
	if !strings.Contains(buf.String(), "must be >= 1") {
		t.Errorf("missing usage message: %q", buf.String())
	}
}

// TestDaemonLifecycle drives the daemon end to end in-process: boot,
// readiness, a tiny sweep over HTTP, cached resubmission, metrics,
// and graceful drain.
func TestDaemonLifecycle(t *testing.T) {
	stop := make(chan struct{})
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{
			"-addr", "127.0.0.1:0",
			"-queue", "4",
			"-workers", "1",
			"-point-workers", "2",
			"-cache-dir", t.TempDir(),
			"-drain-timeout", "10s",
		}, io.Discard, stop, ready)
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exit:
		t.Fatalf("daemon exited early with %d", code)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/readyz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz: %v %v", err, resp)
	}
	resp.Body.Close()

	submit := func() (int, map[string]any) {
		body := `{"experiment":"figure5","seed":1,"scale":"quick","f":[64],"r":[8],"l":[16]}`
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	code, job := submit()
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d (%v)", code, job)
	}
	id := job["id"].(string)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st["state"] == "done" {
			break
		}
		if st["state"] == "failed" || st["state"] == "canceled" {
			t.Fatalf("job ended %v: %v", st["state"], st["error"])
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Resubmission is a cache hit, answered terminally at submit time.
	code, job = submit()
	if code != http.StatusOK || job["cached"] != true {
		t.Fatalf("resubmit: status=%d cached=%v", code, job["cached"])
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"rrserve_engine_runs_total 1",
		"rrserve_cache_hits_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("drain exit = %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
}
