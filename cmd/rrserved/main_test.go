package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if got := run([]string{"-bogus"}, &buf, nil, nil); got != 2 {
		t.Errorf("bad flag exit = %d, want 2", got)
	}
	buf.Reset()
	if got := run([]string{"-queue", "0"}, &buf, nil, nil); got != 2 {
		t.Errorf("-queue 0 exit = %d, want 2", got)
	}
	if !strings.Contains(buf.String(), "must be >= 1") {
		t.Errorf("missing usage message: %q", buf.String())
	}
	buf.Reset()
	if got := run([]string{"-role", "conductor"}, &buf, nil, nil); got != 2 {
		t.Errorf("bad -role exit = %d, want 2", got)
	}
	if got := run([]string{"-role", "coordinator"}, io.Discard, nil, nil); got != 2 {
		t.Errorf("coordinator without -cluster-workers exit = %d, want 2", got)
	}
	if got := run([]string{"-role", "worker", "-cluster-workers", "http://x:1"}, io.Discard, nil, nil); got != 2 {
		t.Errorf("worker with -cluster-workers exit = %d, want 2", got)
	}
	if got := run([]string{"-role", "coordinator", "-cluster-workers", "not a url"}, io.Discard, nil, nil); got != 2 {
		t.Errorf("bad worker URL exit = %d, want 2", got)
	}
	if got := run([]string{"-role", "coordinator", "-cluster-workers", "http://x:1", "-cluster-quorum", "5"}, io.Discard, nil, nil); got != 2 {
		t.Errorf("quorum > workers exit = %d, want 2", got)
	}
}

// TestDaemonLifecycle drives the daemon end to end in-process: boot,
// readiness, a tiny sweep over HTTP, cached resubmission, metrics,
// and graceful drain.
func TestDaemonLifecycle(t *testing.T) {
	stop := make(chan struct{})
	ready := make(chan string, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- run([]string{
			"-addr", "127.0.0.1:0",
			"-queue", "4",
			"-workers", "1",
			"-point-workers", "2",
			"-cache-dir", t.TempDir(),
			"-drain-timeout", "10s",
		}, io.Discard, stop, ready)
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exit:
		t.Fatalf("daemon exited early with %d", code)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/readyz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("readyz: %v %v", err, resp)
	}
	resp.Body.Close()

	submit := func() (int, map[string]any) {
		body := `{"experiment":"figure5","seed":1,"scale":"quick","f":[64],"r":[8],"l":[16]}`
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	code, job := submit()
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d (%v)", code, job)
	}
	id := job["id"].(string)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st["state"] == "done" {
			break
		}
		if st["state"] == "failed" || st["state"] == "canceled" {
			t.Fatalf("job ended %v: %v", st["state"], st["error"])
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Resubmission is a cache hit, answered terminally at submit time.
	code, job = submit()
	if code != http.StatusOK || job["cached"] != true {
		t.Fatalf("resubmit: status=%d cached=%v", code, job["cached"])
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"rrserve_engine_runs_total 1",
		"rrserve_cache_hits_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	close(stop)
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("drain exit = %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

// TestClusterLifecycle boots three worker daemons and a coordinator
// in-process, checks the quorum gate on /readyz, runs a sweep through
// the fleet, and verifies the cluster metrics report all workers
// healthy with compute traffic.
func TestClusterLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("boots four daemons and runs a sweep")
	}
	type daemon struct {
		stop chan struct{}
		exit chan int
	}
	boot := func(args ...string) (string, daemon) {
		d := daemon{stop: make(chan struct{}), exit: make(chan int, 1)}
		ready := make(chan string, 1)
		go func() {
			d.exit <- run(append([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "10s"}, args...), io.Discard, d.stop, ready)
		}()
		select {
		case addr := <-ready:
			return addr, d
		case code := <-d.exit:
			t.Fatalf("daemon %v exited early with %d", args, code)
		case <-time.After(10 * time.Second):
			t.Fatalf("daemon %v never became ready", args)
		}
		panic("unreachable")
	}
	drain := func(d daemon) {
		close(d.stop)
		select {
		case <-d.exit:
		case <-time.After(15 * time.Second):
			t.Error("daemon did not drain")
		}
	}

	var workerAddrs []string
	for i := 0; i < 3; i++ {
		addr, d := boot("-role", "worker", "-workers", "1", "-point-workers", "2")
		defer drain(d)
		workerAddrs = append(workerAddrs, "http://"+addr)
	}
	coordAddr, coord := boot(
		"-role", "coordinator",
		"-cluster-workers", strings.Join(workerAddrs, ","),
		"-cluster-quorum", "2",
		"-cluster-batch", "2",
		"-workers", "1", "-point-workers", "2",
	)
	defer drain(coord)
	base := "http://" + coordAddr

	// The coordinator probes synchronously at startup, so with all three
	// workers already up readyz passes quorum immediately.
	resp, err := http.Get(base + "/readyz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("coordinator readyz: %v %v", err, resp)
	}
	resp.Body.Close()

	body := `{"experiment":"figure5","seed":1,"scale":"quick","f":[32,64],"r":[8,32],"l":[16]}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job map[string]any
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d (%v)", resp.StatusCode, job)
	}
	id := job["id"].(string)
	deadline := time.Now().Add(45 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st["state"] == "done" {
			break
		}
		if st["state"] == "failed" || st["state"] == "canceled" {
			t.Fatalf("job ended %v: %v", st["state"], st["error"])
		}
		if time.Now().After(deadline) {
			t.Fatal("clustered job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := strings.Count(string(metrics), "rrserve_cluster_worker_up{"); got != 3 {
		t.Errorf("worker_up series = %d, want 3", got)
	}
	if strings.Contains(string(metrics), "rrserve_cluster_workers_healthy 3") == false {
		t.Error("metrics do not report 3 healthy workers")
	}
	if strings.Contains(string(metrics), "rrserve_cluster_points_total 0\n") {
		t.Error("coordinator accepted no points from the fleet")
	}
}
