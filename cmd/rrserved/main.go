// Command rrserved serves the paper's experiments over HTTP: a job
// queue and worker pool run sweeps on demand, and a content-addressed
// result cache — sound because the engine is byte-identical for a
// given (experiment, seed, scale, grids) — answers repeated
// submissions without re-simulating.
//
// Usage:
//
//	rrserved -addr 127.0.0.1:8347 -queue 64 -workers 2
//	rrserved -cache-dir /var/cache/rrserved -cache-bytes 67108864
//	rrserved -point-cache-dir /var/cache/rrserved-points   # reuse sweep points across overlapping jobs
//
// Cluster mode (see docs/cluster.md): -role worker additionally serves
// the shard compute API at /v1/cluster/compute; -role coordinator
// fans sweep points out to -cluster-workers over consistent hashing,
// with health probing, retries, and hedged requests. The job API and
// its results are identical in every role.
//
//	rrserved -role worker -addr 127.0.0.1:8441 -point-cache-dir /var/cache/w1
//	rrserved -role coordinator -cluster-workers http://127.0.0.1:8441,http://127.0.0.1:8442
//
// API (see docs/serve.md for the full reference):
//
//	GET    /v1/experiments   list runnable experiments
//	POST   /v1/jobs          submit {"experiment","seed","scale","f","r","l"}
//	GET    /v1/jobs/{id}     job status + result
//	DELETE /v1/jobs/{id}     cancel a job
//	GET    /metrics          Prometheus text metrics
//	GET    /healthz, /readyz liveness and readiness
//
// SIGINT/SIGTERM drain gracefully: submissions are refused, queued and
// running jobs get -drain-timeout to finish (then their contexts are
// cancelled), and the disk cache index is persisted.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"regreloc/internal/cluster"
	"regreloc/internal/experiment"
	"regreloc/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil, nil))
}

// writeLookupProfile dumps a named runtime profile (mutex, block) to
// path on clean shutdown; failures are reported, not fatal — the
// daemon already served its traffic.
func writeLookupProfile(stderr io.Writer, name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(stderr, "rrserved: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(stderr, "rrserved: writing %s profile: %v\n", name, err)
	}
}

// run implements the daemon; it returns the process exit status. stop
// (optional) triggers the same graceful drain as SIGTERM; ready
// (optional) receives the bound listen address once serving.
func run(args []string, stderr io.Writer, stop <-chan struct{}, ready chan<- string) int {
	fs := flag.NewFlagSet("rrserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "127.0.0.1:8347", "listen address")
		queueCap      = fs.Int("queue", 64, "job queue capacity (full queue returns 429)")
		workers       = fs.Int("workers", 2, "job worker pool size")
		pointWorkers  = fs.Int("point-workers", 0, "engine workers per job: 0 = one per core")
		jobTimeout    = fs.Duration("job-timeout", 10*time.Minute, "per-job execution deadline")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
		cacheBytes    = fs.Int64("cache-bytes", 64<<20, "in-memory result cache budget in bytes")
		cacheDir      = fs.String("cache-dir", "", "directory for the disk cache tier (empty = memory only)")
		pointBytes    = fs.Int64("point-cache-bytes", 32<<20, "in-memory point-store budget in bytes (negative disables point memoization)")
		pointDir      = fs.String("point-cache-dir", "", "directory for the point store's disk tier (empty = memory only)")
		pointShards   = fs.Int("point-cache-shards", 0, "point-store shard count, rounded up to a power of two (0 = sized to GOMAXPROCS)")
		pointSpillQ   = fs.Int("point-cache-spill-queue", 0, "max point-store entries queued for background disk spill (0 = default)")
		jobRetention  = fs.Duration("job-retention", 15*time.Minute, "how long finished jobs stay queryable by ID")
		maxJobs       = fs.Int("max-jobs", 1024, "job table cap: oldest finished jobs are pruned past it")
		tenantMax     = fs.Int("tenant-max-inflight", 0, "max active jobs per tenant, 429 past it (0 = no per-tenant cap)")
		tenantWeights = fs.String("tenant-weights", "", "comma-separated tenant dequeue weights, e.g. alice=4,bob=1 (unlisted tenants weigh 1)")
		pprofOn       = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (do not enable on untrusted networks)")
		role          = fs.String("role", "single", "process role: single, worker (serve the shard compute API), or coordinator (fan sweeps out to -cluster-workers)")
		clusterPeers  = fs.String("cluster-workers", "", "comma-separated worker base URLs (coordinator role only)")
		clusterQuorum = fs.Int("cluster-quorum", 0, "healthy workers required before /readyz reports ready (0 = majority of -cluster-workers)")
		clusterBatch  = fs.Int("cluster-batch", 0, "points per worker compute request (0 = 32)")
		hedgeAfter    = fs.Duration("cluster-hedge-after", 0, "hedge a still-unanswered batch after this long (0 = 500ms, negative disables)")
		hedgeMax      = fs.Float64("cluster-hedge-max", 0, "max hedged batches as a fraction of batches sent (0 = 0.1)")
		clusterRetry  = fs.Int("cluster-retries", 0, "failed-batch re-sends against surviving workers (0 = 2, negative disables)")
		probeInterval = fs.Duration("cluster-probe-interval", 0, "worker health probe spacing (0 = 2s)")
		computeRate   = fs.Float64("compute-rate", 0, "cap fresh point simulations per second on this node (0 = unlimited); the per-node capacity model for cluster benchmarking")
		fidelity      = fs.String("fidelity", "", "default measurement tier for submissions that do not set one: sim, machine, analytic, or adaptive (empty = sim)")
		mtxProf       = fs.String("mutexprofile", "", "write a mutex-contention profile to this file on clean shutdown")
		blkProf       = fs.String("blockprofile", "", "write a goroutine-blocking profile to this file on clean shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *queueCap < 1 || *workers < 1 {
		fmt.Fprintln(stderr, "rrserved: -queue and -workers must be >= 1")
		return 2
	}
	switch *role {
	case "single", "worker", "coordinator":
	default:
		fmt.Fprintf(stderr, "rrserved: -role must be single, worker, or coordinator, got %q\n", *role)
		return 2
	}
	if *role == "coordinator" && *clusterPeers == "" {
		fmt.Fprintln(stderr, "rrserved: -role coordinator requires -cluster-workers")
		return 2
	}
	if *role != "coordinator" && *clusterPeers != "" {
		fmt.Fprintf(stderr, "rrserved: -cluster-workers only applies to -role coordinator (got -role %s)\n", *role)
		return 2
	}
	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		fmt.Fprintf(stderr, "rrserved: %v\n", err)
		return 2
	}
	logger := log.New(stderr, "rrserved ", log.LstdFlags|log.Lmsgprefix)

	// Lock-contention profiles: runtime collection is off by default
	// (it costs a few percent), so it is switched on only when a
	// profile was requested, and the profile is written as the daemon
	// exits. See docs/performance.md, "Diagnosing lock contention".
	if *mtxProf != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeLookupProfile(stderr, "mutex", *mtxProf)
	}
	if *blkProf != "" {
		runtime.SetBlockProfileRate(1)
		defer writeLookupProfile(stderr, "block", *blkProf)
	}

	// NewRateLimiter returns a typed nil for rate <= 0; only a non-nil
	// limiter may cross into the Limiter interface, or the engine would
	// call Acquire on a nil receiver.
	var computeLimit experiment.Limiter
	if rl := cluster.NewRateLimiter(*computeRate); rl != nil {
		computeLimit = rl
	}

	// Coordinator fan-out client: built before the server so its
	// ReadyCheck and metrics hook into the serving layer's endpoints.
	var cl *cluster.Client
	quorum := 0
	if *role == "coordinator" {
		cl, err = cluster.New(cluster.Config{
			Workers:       strings.Split(*clusterPeers, ","),
			BatchSize:     *clusterBatch,
			Retries:       *clusterRetry,
			HedgeAfter:    *hedgeAfter,
			HedgeMax:      *hedgeMax,
			ProbeInterval: *probeInterval,
			Logf:          logger.Printf,
		})
		if err != nil {
			fmt.Fprintf(stderr, "rrserved: %v\n", err)
			return 2
		}
		quorum = *clusterQuorum
		if quorum <= 0 {
			quorum = cl.WorkerCount()/2 + 1
		}
		if quorum > cl.WorkerCount() {
			fmt.Fprintf(stderr, "rrserved: -cluster-quorum %d exceeds the %d configured workers\n", quorum, cl.WorkerCount())
			return 2
		}
	}

	cfg := serve.Config{
		QueueCap:             *queueCap,
		Workers:              *workers,
		PointWorkers:         *pointWorkers,
		JobTimeout:           *jobTimeout,
		CacheBytes:           *cacheBytes,
		CacheDir:             *cacheDir,
		PointCacheBytes:      *pointBytes,
		PointCacheDir:        *pointDir,
		PointCacheShards:     *pointShards,
		PointCacheSpillQueue: *pointSpillQ,
		JobRetention:         *jobRetention,
		MaxJobs:              *maxJobs,
		TenantWeights:        weights,
		TenantMaxInflight:    *tenantMax,
		Logger:               logger,
		ComputeLimit:         computeLimit,
		DefaultFidelity:      *fidelity,
	}
	if cl != nil {
		cfg.Remote = cl
		cfg.ReadyCheck = func() error { return cl.Ready(quorum) }
		cfg.ExtraMetrics = cl.WriteProm
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "rrserved: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "rrserved: %v\n", err)
		return 1
	}
	srv.Start()
	if cl != nil {
		cl.Start()
		defer cl.Stop()
	}
	handler := srv.Handler()
	if *pprofOn || *role == "worker" {
		// Mount the extra endpoints explicitly on an outer mux rather
		// than relying on global registration, so they exist only when
		// asked for.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		if *role == "worker" {
			mux.Handle(cluster.ComputePath, cluster.NewWorker(cluster.WorkerConfig{
				Points:       srv.Points(),
				PointWorkers: *pointWorkers,
				ComputeLimit: computeLimit,
				Logf:         logger.Printf,
			}))
		}
		if *pprofOn {
			mux.HandleFunc("/debug/pprof/", netpprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		}
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	logger.Printf("listening on http://%s (role=%s queue=%d workers=%d cache=%dB dir=%q)",
		ln.Addr(), *role, *queueCap, *workers, *cacheBytes, *cacheDir)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errCh:
		logger.Printf("serve error: %v", err)
		return 1
	case s := <-sig:
		logger.Printf("received %v, draining (deadline %v)", s, *drainTimeout)
	case <-stop:
		logger.Printf("stop requested, draining (deadline %v)", *drainTimeout)
	}

	// Drain the job layer first — submissions are refused but clients
	// can keep polling their jobs over HTTP until the pool is idle —
	// then close the HTTP server.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer httpCancel()
	hs.Shutdown(httpCtx)
	if drainErr != nil {
		logger.Printf("shutdown: %v", drainErr)
		return 1
	}
	logger.Printf("drained cleanly")
	return 0
}

// parseTenantWeights parses "alice=4,bob=1" into the admission
// queue's weight map. Empty input means every tenant weighs 1.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenant-weights: want name=weight, got %q", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-tenant-weights: weight for %q must be a positive integer, got %q", name, val)
		}
		weights[name] = w
	}
	return weights, nil
}
