// Command rrserved serves the paper's experiments over HTTP: a job
// queue and worker pool run sweeps on demand, and a content-addressed
// result cache — sound because the engine is byte-identical for a
// given (experiment, seed, scale, grids) — answers repeated
// submissions without re-simulating.
//
// Usage:
//
//	rrserved -addr 127.0.0.1:8347 -queue 64 -workers 2
//	rrserved -cache-dir /var/cache/rrserved -cache-bytes 67108864
//	rrserved -point-cache-dir /var/cache/rrserved-points   # reuse sweep points across overlapping jobs
//
// API (see docs/serve.md for the full reference):
//
//	GET    /v1/experiments   list runnable experiments
//	POST   /v1/jobs          submit {"experiment","seed","scale","f","r","l"}
//	GET    /v1/jobs/{id}     job status + result
//	DELETE /v1/jobs/{id}     cancel a job
//	GET    /metrics          Prometheus text metrics
//	GET    /healthz, /readyz liveness and readiness
//
// SIGINT/SIGTERM drain gracefully: submissions are refused, queued and
// running jobs get -drain-timeout to finish (then their contexts are
// cancelled), and the disk cache index is persisted.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"regreloc/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil, nil))
}

// run implements the daemon; it returns the process exit status. stop
// (optional) triggers the same graceful drain as SIGTERM; ready
// (optional) receives the bound listen address once serving.
func run(args []string, stderr io.Writer, stop <-chan struct{}, ready chan<- string) int {
	fs := flag.NewFlagSet("rrserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr          = fs.String("addr", "127.0.0.1:8347", "listen address")
		queueCap      = fs.Int("queue", 64, "job queue capacity (full queue returns 429)")
		workers       = fs.Int("workers", 2, "job worker pool size")
		pointWorkers  = fs.Int("point-workers", 0, "engine workers per job: 0 = one per core")
		jobTimeout    = fs.Duration("job-timeout", 10*time.Minute, "per-job execution deadline")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
		cacheBytes    = fs.Int64("cache-bytes", 64<<20, "in-memory result cache budget in bytes")
		cacheDir      = fs.String("cache-dir", "", "directory for the disk cache tier (empty = memory only)")
		pointBytes    = fs.Int64("point-cache-bytes", 32<<20, "in-memory point-store budget in bytes (negative disables point memoization)")
		pointDir      = fs.String("point-cache-dir", "", "directory for the point store's disk tier (empty = memory only)")
		jobRetention  = fs.Duration("job-retention", 15*time.Minute, "how long finished jobs stay queryable by ID")
		maxJobs       = fs.Int("max-jobs", 1024, "job table cap: oldest finished jobs are pruned past it")
		tenantMax     = fs.Int("tenant-max-inflight", 0, "max active jobs per tenant, 429 past it (0 = no per-tenant cap)")
		tenantWeights = fs.String("tenant-weights", "", "comma-separated tenant dequeue weights, e.g. alice=4,bob=1 (unlisted tenants weigh 1)")
		pprofOn       = fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (do not enable on untrusted networks)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *queueCap < 1 || *workers < 1 {
		fmt.Fprintln(stderr, "rrserved: -queue and -workers must be >= 1")
		return 2
	}
	weights, err := parseTenantWeights(*tenantWeights)
	if err != nil {
		fmt.Fprintf(stderr, "rrserved: %v\n", err)
		return 2
	}
	logger := log.New(stderr, "rrserved ", log.LstdFlags|log.Lmsgprefix)

	srv, err := serve.New(serve.Config{
		QueueCap:          *queueCap,
		Workers:           *workers,
		PointWorkers:      *pointWorkers,
		JobTimeout:        *jobTimeout,
		CacheBytes:        *cacheBytes,
		CacheDir:          *cacheDir,
		PointCacheBytes:   *pointBytes,
		PointCacheDir:     *pointDir,
		JobRetention:      *jobRetention,
		MaxJobs:           *maxJobs,
		TenantWeights:     weights,
		TenantMaxInflight: *tenantMax,
		Logger:            logger,
	})
	if err != nil {
		fmt.Fprintf(stderr, "rrserved: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "rrserved: %v\n", err)
		return 1
	}
	srv.Start()
	handler := srv.Handler()
	if *pprofOn {
		// Mount the profiling endpoints explicitly rather than relying on
		// net/http/pprof's DefaultServeMux registration, so they exist
		// only when asked for.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	logger.Printf("listening on http://%s (queue=%d workers=%d cache=%dB dir=%q)",
		ln.Addr(), *queueCap, *workers, *cacheBytes, *cacheDir)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-errCh:
		logger.Printf("serve error: %v", err)
		return 1
	case s := <-sig:
		logger.Printf("received %v, draining (deadline %v)", s, *drainTimeout)
	case <-stop:
		logger.Printf("stop requested, draining (deadline %v)", *drainTimeout)
	}

	// Drain the job layer first — submissions are refused but clients
	// can keep polling their jobs over HTTP until the pool is idle —
	// then close the HTTP server.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	httpCtx, httpCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer httpCancel()
	hs.Shutdown(httpCtx)
	if drainErr != nil {
		logger.Printf("shutdown: %v", drainErr)
		return 1
	}
	logger.Printf("drained cleanly")
	return 0
}

// parseTenantWeights parses "alice=4,bob=1" into the admission
// queue's weight map. Empty input means every tenant weighs 1.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenant-weights: want name=weight, got %q", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-tenant-weights: weight for %q must be a positive integer, got %q", name, val)
		}
		weights[name] = w
	}
	return weights, nil
}
