// Command rrcheck is the static context-boundary checker from paper
// Section 2.4: it scans assembled programs for register operands that
// reach outside a thread's declared context.
//
// Usage:
//
//	rrcheck -size 16 file.s
//	rrcheck -size 8 -multirrm file.s
//	rrcheck -infer file.s          # report the smallest fitting context
//
// Exit status is 1 when violations are found.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"regreloc/internal/alloc"
	"regreloc/internal/asm"
	"regreloc/internal/check"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run implements the tool; it returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rrcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		size  = fs.Int("size", 0, "declared context size in registers")
		multi = fs.Bool("multirrm", false, "treat the operand high bit as the RRM selector")
		infer = fs.Bool("infer", false, "infer the smallest context the code fits in")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 || (*size == 0 && !*infer) {
		fs.Usage()
		return 2
	}

	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "rrcheck: %v\n", err)
		return 1
	}
	prog, err := asm.Assemble(string(data))
	if err != nil {
		fmt.Fprintf(stderr, "rrcheck: %v\n", err)
		return 1
	}

	if *infer {
		n := check.MaxRegister(prog, 0, 0)
		fmt.Fprintf(stdout, "highest register used: r%d (requirement C = %d, context size %d)\n",
			n-1, n, alloc.RoundContextSize(n, 4, 64))
		if *size == 0 {
			return 0
		}
	}

	violations := check.Program(prog, check.Options{ContextSize: *size, MultiRRM: *multi})
	if len(violations) == 0 {
		fmt.Fprintf(stdout, "ok: all register operands within a %d-register context\n", *size)
		return 0
	}
	for _, v := range violations {
		fmt.Fprintln(stdout, v)
	}
	return 1
}
