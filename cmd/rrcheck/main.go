// Command rrcheck is the static checker from paper Section 2.4, grown
// into the driver for the flow-sensitive analyzer in
// internal/analysis: CFG reachability, per-register liveness, the
// context-boundary check, and LDRRM hazard detection.
//
// Usage:
//
//	rrcheck -ctx 16 file.s                      # full analysis
//	rrcheck -ctx 8 -multirrm file.s             # Section 5.3 decoding
//	rrcheck -ctx 16 -passes bounds,hazards file.s
//	rrcheck -ctx 16 -format json file.s
//	rrcheck -infer file.s                       # smallest fitting context
//	rrcheck -kernel                             # self-check the kernel asm
//
// Exit status: 0 when no unsuppressed diagnostics are found, 1 when
// any are, 2 on usage, file, or assembly errors (assembly errors are
// reported with their source line).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"regreloc/internal/alloc"
	"regreloc/internal/analysis"
	"regreloc/internal/asm"
	"regreloc/internal/kernel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run implements the tool; it returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rrcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ctx        = fs.Int("ctx", 0, "declared context size in registers")
		size       = fs.Int("size", 0, "alias for -ctx (kept for compatibility)")
		multi      = fs.Bool("multirrm", false, "treat the operand high bit as the RRM selector")
		infer      = fs.Bool("infer", false, "infer the smallest context the code fits in")
		passesF    = fs.String("passes", "all", "comma-separated passes: bounds,hazards,unreachable")
		format     = fs.String("format", "text", "output format: text or json")
		delay      = fs.Int("delay", 1, "LDRRM delay slots")
		entries    = fs.String("entry", "", "comma-separated entry labels (default: every label)")
		kernelMode = fs.Bool("kernel", false, "self-check the embedded kernel assembly routines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ctx == 0 {
		*ctx = *size
	}

	passes, err := parsePasses(*passesF)
	if err != nil {
		fmt.Fprintf(stderr, "rrcheck: %v\n", err)
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "rrcheck: unknown format %q\n", *format)
		return 2
	}

	if *kernelMode {
		if fs.NArg() != 0 {
			fs.Usage()
			return 2
		}
		return runKernel(passes, *format, *delay, stdout, stderr)
	}

	if fs.NArg() != 1 || (*ctx == 0 && !*infer) {
		fs.Usage()
		return 2
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "rrcheck: %v\n", err)
		return 2
	}
	src := string(data)

	opts := analysis.Options{
		ContextSize: *ctx,
		MultiRRM:    *multi,
		DelaySlots:  *delay,
		Passes:      passes,
	}
	res, err := analysis.AnalyzeSource(src, opts)
	if err != nil {
		// Assembly errors carry their source line (asm: line N: ...).
		fmt.Fprintf(stderr, "rrcheck: %v\n", err)
		return 2
	}
	if *entries != "" {
		res, err = analyzeWithEntries(src, opts, *entries)
		if err != nil {
			fmt.Fprintf(stderr, "rrcheck: %v\n", err)
			return 2
		}
	}

	if *infer {
		n := res.Requirement()
		fmt.Fprintf(stdout, "highest register used: r%d (requirement C = %d, context size %d)\n",
			n-1, n, alloc.RoundContextSize(n, 4, 64))
		if *ctx == 0 {
			return 0
		}
	}

	switch *format {
	case "json":
		out, err := res.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "rrcheck: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	default:
		fmt.Fprint(stdout, res.Text())
	}
	if len(res.Diags) > 0 {
		return 1
	}
	return 0
}

// analyzeWithEntries re-analyzes with explicit CFG roots resolved from
// a comma-separated label list.
func analyzeWithEntries(src string, opts analysis.Options, labels string) (*analysis.Result, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	for _, label := range strings.Split(labels, ",") {
		label = strings.TrimSpace(label)
		addr, ok := p.Symbols[label]
		if !ok {
			return nil, fmt.Errorf("unknown entry label %q", label)
		}
		opts.Entries = append(opts.Entries, addr)
	}
	return analysis.AnalyzeSource(src, opts)
}

// runKernel self-applies the analyzer to every embedded kernel
// assembly routine group at the context size each must satisfy.
func runKernel(passes analysis.Pass, format string, delay int, stdout, stderr io.Writer) int {
	status := 0
	for _, t := range kernel.LintTargets() {
		res, err := analysis.AnalyzeSource(t.Source, analysis.Options{
			ContextSize: t.ContextSize,
			MultiRRM:    t.MultiRRM,
			DelaySlots:  delay,
			Passes:      passes,
		})
		if err != nil {
			fmt.Fprintf(stderr, "rrcheck: %s: %v\n", t.Name, err)
			return 2
		}
		switch format {
		case "json":
			out, err := res.JSON()
			if err != nil {
				fmt.Fprintf(stderr, "rrcheck: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "%s\n", out)
		default:
			fmt.Fprintf(stdout, "%s: %s\n", t.Name, res.Summary())
			for _, d := range res.Diags {
				fmt.Fprintf(stdout, "%s: %s\n", t.Name, d)
			}
		}
		if len(res.Diags) > 0 {
			status = 1
		}
	}
	return status
}

func parsePasses(s string) (analysis.Pass, error) {
	var p analysis.Pass
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		bit, ok := analysis.PassByName[name]
		if !ok {
			return 0, fmt.Errorf("unknown pass %q", name)
		}
		p |= bit
	}
	if p == 0 {
		p = analysis.PassAll
	}
	return p, nil
}
