// Command rrcheck is the static checker from paper Section 2.4, grown
// into the driver for the flow-sensitive analyzer in
// internal/analysis: CFG reachability, per-register liveness, the
// context-boundary check, LDRRM hazard detection, and the
// interprocedural call-graph passes.
//
// Usage:
//
//	rrcheck -ctx 16 file.s                      # full analysis
//	rrcheck -ctx 8 -multirrm file.s             # Section 5.3 decoding
//	rrcheck -ctx 16 -passes bounds,hazards file.s
//	rrcheck -ctx 16 -format json file.s
//	rrcheck -infer file.s                       # smallest fitting context
//	rrcheck -interproc -infer file.s            # interprocedural requirement
//	rrcheck -interproc -callgraph file.s        # call graph as Graphviz DOT
//	rrcheck -interproc -routines -ctx 16 file.s # per-routine summaries
//	rrcheck -ctx 16 -format sarif file.s        # SARIF 2.1.0 for code scanning
//	rrcheck -kernel                             # self-check the kernel asm
//	rrcheck -kernel -interproc -format sarif    # whole-kernel SARIF
//	rrcheck -cache DIR -ctx 16 file.s           # content-hash result cache
//
// Exit status: 0 when no unsuppressed diagnostics are found, 1 when
// any are, 2 on usage, file, or assembly errors (assembly errors are
// reported with their source line).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"regreloc/internal/alloc"
	"regreloc/internal/analysis"
	"regreloc/internal/asm"
	"regreloc/internal/kernel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run implements the tool; it returns the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rrcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ctx        = fs.Int("ctx", 0, "declared context size in registers")
		size       = fs.Int("size", 0, "alias for -ctx (kept for compatibility)")
		multi      = fs.Bool("multirrm", false, "treat the operand high bit as the RRM selector")
		infer      = fs.Bool("infer", false, "infer the smallest context the code fits in")
		passesF    = fs.String("passes", "all", "comma-separated passes: bounds,hazards,unreachable,interproc")
		format     = fs.String("format", "text", "output format: text, json, or sarif")
		delay      = fs.Int("delay", 1, "LDRRM delay slots")
		entries    = fs.String("entry", "", "comma-separated entry labels (default: every label)")
		kernelMode = fs.Bool("kernel", false, "self-check the embedded kernel assembly routines")
		interproc  = fs.Bool("interproc", false, "build the call graph and routine summaries (enables RR4xx)")
		callgraph  = fs.Bool("callgraph", false, "print the call graph as Graphviz DOT (implies -interproc)")
		routines   = fs.Bool("routines", false, "print per-routine summaries (implies -interproc)")
		cacheDir   = fs.String("cache", "", "directory for the content-hash result cache")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ctx == 0 {
		*ctx = *size
	}
	if *callgraph || *routines {
		*interproc = true
	}

	passes, err := parsePasses(*passesF)
	if err != nil {
		fmt.Fprintf(stderr, "rrcheck: %v\n", err)
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "rrcheck: unknown format %q\n", *format)
		return 2
	}

	// Every option that shapes output takes part in the cache key.
	fingerprint := []string{
		strconv.Itoa(*ctx), strconv.FormatBool(*multi), strconv.FormatBool(*infer),
		*passesF, *format, strconv.Itoa(*delay), *entries,
		strconv.FormatBool(*kernelMode), strconv.FormatBool(*interproc),
		strconv.FormatBool(*callgraph), strconv.FormatBool(*routines),
	}

	if *kernelMode {
		if fs.NArg() != 0 {
			fs.Usage()
			return 2
		}
		for _, t := range kernel.LintTargets() {
			fingerprint = append(fingerprint, t.Name, t.Source, strconv.Itoa(t.ContextSize))
		}
		return withCache(*cacheDir, stdout, fingerprint, func(w io.Writer) int {
			return runKernel(passes, *format, *delay, *interproc, *routines, w, stderr)
		})
	}

	if fs.NArg() != 1 || (*ctx == 0 && !*infer && !*callgraph && !*routines) {
		fs.Usage()
		return 2
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "rrcheck: %v\n", err)
		return 2
	}
	src := string(data)
	fingerprint = append(fingerprint, src)

	opts := analysis.Options{
		ContextSize:     *ctx,
		MultiRRM:        *multi,
		DelaySlots:      *delay,
		Passes:          passes,
		Interprocedural: *interproc,
	}
	return withCache(*cacheDir, stdout, fingerprint, func(w io.Writer) int {
		return runFile(src, fs.Arg(0), opts, *infer, *callgraph, *routines, *format, *entries, w, stderr)
	})
}

// withCache consults the content-hash cache when enabled, otherwise
// runs exec directly. Only clean verdicts (status 0/1) are cached;
// status 2 paths write to stderr, which the cache does not capture.
func withCache(dir string, stdout io.Writer, fingerprint []string, exec func(io.Writer) int) int {
	if dir == "" {
		return exec(stdout)
	}
	key := cacheKey(fingerprint...)
	if e, ok := cacheGet(dir, key); ok {
		io.WriteString(stdout, e.Stdout)
		return e.Status
	}
	var buf bytes.Buffer
	status := exec(&buf)
	io.WriteString(stdout, buf.String())
	if status == 0 || status == 1 {
		cachePut(dir, key, cacheEntry{Status: status, Stdout: buf.String()})
	}
	return status
}

// runFile analyzes one source file and renders the selected output.
func runFile(src, uri string, opts analysis.Options, infer, callgraph, routines bool,
	format, entries string, stdout, stderr io.Writer) int {

	res, err := analysis.AnalyzeSource(src, opts)
	if err != nil {
		// Assembly errors carry their source line (asm: line N: ...).
		fmt.Fprintf(stderr, "rrcheck: %v\n", err)
		return 2
	}
	if entries != "" {
		res, err = analyzeWithEntries(src, opts, entries)
		if err != nil {
			fmt.Fprintf(stderr, "rrcheck: %v\n", err)
			return 2
		}
	}

	if infer {
		n := res.InferredRequirement()
		fmt.Fprintf(stdout, "highest register used: r%d (requirement C = %d, context size %d)\n",
			n-1, n, alloc.RoundContextSize(n, 4, 64))
		if opts.ContextSize == 0 && !callgraph && !routines {
			return 0
		}
	}

	if callgraph {
		fmt.Fprint(stdout, res.CallGraphDOT())
		if len(res.Diags) > 0 {
			return 1
		}
		return 0
	}
	if routines {
		printRoutines(stdout, "", res)
	}

	switch format {
	case "json":
		out, err := res.JSON()
		if err != nil {
			fmt.Fprintf(stderr, "rrcheck: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	case "sarif":
		out, err := analysis.SARIF([]analysis.SARIFInput{{URI: uri, Result: res}})
		if err != nil {
			fmt.Fprintf(stderr, "rrcheck: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	default:
		fmt.Fprint(stdout, res.Text())
	}
	if len(res.Diags) > 0 {
		return 1
	}
	return 0
}

// printRoutines renders the interprocedural summaries, one line per
// routine, prefixed when part of a multi-target run.
func printRoutines(w io.Writer, prefix string, res *analysis.Result) {
	for _, rt := range res.Routines() {
		ret := "returns"
		if !rt.Returns {
			ret = "noreturn"
		}
		extra := ""
		if rt.Unresolved {
			extra = " unresolved-call"
		}
		fmt.Fprintf(w, "%sroutine %s @%d: C = %d (local %d), %d words, %s, live-in %v%s\n",
			prefix, rt.Name, rt.Entry, rt.Requirement, rt.LocalRequirement,
			rt.Size, ret, rt.LiveIn, extra)
	}
}

// analyzeWithEntries re-analyzes with explicit CFG roots resolved from
// a comma-separated label list.
func analyzeWithEntries(src string, opts analysis.Options, labels string) (*analysis.Result, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	for _, label := range strings.Split(labels, ",") {
		label = strings.TrimSpace(label)
		addr, ok := p.Symbols[label]
		if !ok {
			return nil, fmt.Errorf("unknown entry label %q", label)
		}
		opts.Entries = append(opts.Entries, addr)
	}
	return analysis.AnalyzeSource(src, opts)
}

// runKernel self-applies the analyzer to every embedded kernel
// assembly routine group at the context size each must satisfy. With
// -format sarif the targets merge into one SARIF log whose artifact
// URIs name the embedded routine groups.
func runKernel(passes analysis.Pass, format string, delay int, interproc, routines bool,
	stdout, stderr io.Writer) int {

	status := 0
	var inputs []analysis.SARIFInput
	for _, t := range kernel.LintTargets() {
		res, err := analysis.AnalyzeSource(t.Source, analysis.Options{
			ContextSize:     t.ContextSize,
			MultiRRM:        t.MultiRRM,
			DelaySlots:      delay,
			Passes:          passes,
			Interprocedural: interproc,
		})
		if err != nil {
			fmt.Fprintf(stderr, "rrcheck: %s: %v\n", t.Name, err)
			return 2
		}
		switch format {
		case "json":
			out, err := res.JSON()
			if err != nil {
				fmt.Fprintf(stderr, "rrcheck: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "%s\n", out)
		case "sarif":
			inputs = append(inputs, analysis.SARIFInput{URI: "kernel/" + t.Name + ".s", Result: res})
		default:
			fmt.Fprintf(stdout, "%s: %s\n", t.Name, res.Summary())
			if routines {
				printRoutines(stdout, t.Name+": ", res)
			}
			for _, d := range res.Diags {
				fmt.Fprintf(stdout, "%s: %s\n", t.Name, d)
			}
		}
		if len(res.Diags) > 0 {
			status = 1
		}
	}
	if format == "sarif" {
		out, err := analysis.SARIF(inputs)
		if err != nil {
			fmt.Fprintf(stderr, "rrcheck: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "%s\n", out)
	}
	return status
}

func parsePasses(s string) (analysis.Pass, error) {
	var p analysis.Pass
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		bit, ok := analysis.PassByName[name]
		if !ok {
			return 0, fmt.Errorf("unknown pass %q", name)
		}
		p |= bit
	}
	if p == 0 {
		p = analysis.PassAll
	}
	return p, nil
}
