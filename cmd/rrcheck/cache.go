// Result caching: repeated checks of unchanged sources are free. Keys
// are content hashes over the analyzer schema version, the full option
// fingerprint, and the source text — the same content-addressed scheme
// pointstore uses — so any change to inputs or analyzer behaviour
// (bump cacheSchema) misses cleanly instead of serving stale verdicts.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
)

// cacheSchema versions the cache key: bump when the analyzer's output
// for identical inputs can change.
const cacheSchema = "rrcheck-cache-v1"

// cacheEntry is a stored verdict: the rendered stdout and the exit
// status it came with.
type cacheEntry struct {
	Status int    `json:"status"`
	Stdout string `json:"stdout"`
}

// cacheKey hashes the schema version and every fingerprint part into
// the entry's file name.
func cacheKey(parts ...string) string {
	h := sha256.New()
	h.Write([]byte(cacheSchema))
	for _, p := range parts {
		// Length-prefix framing keeps ("ab","c") distinct from ("a","bc").
		var n [8]byte
		ln := len(p)
		for i := 0; i < 8; i++ {
			n[i] = byte(ln >> (8 * i))
		}
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheGet loads an entry; any unreadable or corrupt file is a miss.
func cacheGet(dir, key string) (cacheEntry, bool) {
	data, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return cacheEntry{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		return cacheEntry{}, false
	}
	if e.Status != 0 && e.Status != 1 {
		return cacheEntry{}, false
	}
	return e, true
}

// cachePut stores an entry via rename for atomicity; failures are
// silent (the cache is an optimization, not a correctness layer).
func cachePut(dir, key string, e cacheEntry) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	tmp.Close()
	os.Rename(name, filepath.Join(dir, key+".json"))
}
