package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanProgramExitsZero(t *testing.T) {
	path := writeTemp(t, "movi r1, 5\nadd r2, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-size", "8", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("output = %q", out.String())
	}
}

func TestViolationExitsOne(t *testing.T) {
	path := writeTemp(t, "add r9, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-size", "8", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "outside context") ||
		!strings.Contains(out.String(), "RR101") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCtxFlagAliasesSize(t *testing.T) {
	path := writeTemp(t, "add r9, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "8", path}, &out, &errOut); code != 1 {
		t.Fatalf("-ctx exit %d", code)
	}
	out.Reset()
	if code := run([]string{"-ctx", "16", path}, &out, &errOut); code != 0 {
		t.Fatalf("-ctx 16 exit %d: %s", code, out.String())
	}
}

func TestInferMode(t *testing.T) {
	path := writeTemp(t, "add r13, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-infer", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "C = 14") || !strings.Contains(out.String(), "context size 16") {
		t.Errorf("output = %q", out.String())
	}
}

func TestInferIgnoresDeadStores(t *testing.T) {
	// A store target register still counts toward the requirement even
	// when its value is never read: the write lands in the context.
	path := writeTemp(t, "movi r13, 1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-infer", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "C = 14") {
		t.Errorf("output = %q", out.String())
	}
}

func TestMultiRRMFlag(t *testing.T) {
	path := writeTemp(t, "add c0.r3, c0.r4, c1.r6\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-size", "8", "-multirrm", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	// Without -multirrm the selector bit makes c1.r6 operand value 38.
	out.Reset()
	if code := run([]string{"-size", "8", path}, &out, &errOut); code != 1 {
		t.Fatalf("plain exit %d: %s", code, out.String())
	}
}

func TestPassesFlag(t *testing.T) {
	// ldrrm with a read in the delay slot: a hazard, not a bounds issue.
	src := "movi r2, 0\nldrrm r2\nadd r3, r1, r1\nhalt\n"
	path := writeTemp(t, src)
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "8", "-passes", "bounds", path}, &out, &errOut); code != 0 {
		t.Fatalf("bounds-only exit %d: %s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-ctx", "8", "-passes", "hazards", path}, &out, &errOut); code != 1 {
		t.Fatalf("hazards exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "RR201") {
		t.Errorf("output = %q", out.String())
	}
	out.Reset()
	if code := run([]string{"-ctx", "8", "-passes", "bogus", path}, &out, &errOut); code != 2 {
		t.Errorf("unknown pass exit = %d", code)
	}
}

func TestJSONFormat(t *testing.T) {
	path := writeTemp(t, "add r9, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "8", "-format", "json", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d", code)
	}
	var rep struct {
		Requirement int `json:"requirement"`
		Diagnostics []struct {
			Code string `json:"code"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if rep.Requirement != 10 || len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Code != "RR101" {
		t.Errorf("report = %+v", rep)
	}
	var errOut2 strings.Builder
	if code := run([]string{"-ctx", "8", "-format", "yaml", path}, &out, &errOut2); code != 2 {
		t.Errorf("bad format exit = %d", code)
	}
}

func TestSuppressionComment(t *testing.T) {
	path := writeTemp(t, "add r9, r1, r1 ; lint:ignore RR101 intentional\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "8", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 suppressed") {
		t.Errorf("output = %q", out.String())
	}
}

func TestDataWordsNotFlagged(t *testing.T) {
	path := writeTemp(t, "halt\n.word 0x12345678\n.word 0xffffffff\n")
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "4", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
}

func TestEntryFlag(t *testing.T) {
	// Without roots at every label, code after halt is unreachable; an
	// explicit -entry keeps only main live so r9 in helper is demoted
	// to the Info-level flat scan.
	src := "main:\nmovi r1, 1\nhalt\nhelper:\nadd r9, r1, r1\nhalt\n"
	path := writeTemp(t, src)
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "8", "-passes", "bounds", "-entry", "main", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, out.String(), errOut.String())
	}
	out.Reset()
	if code := run([]string{"-ctx", "8", "-entry", "nosuch", path}, &out, &errOut); code != 2 {
		t.Errorf("unknown label exit = %d", code)
	}
}

func TestKernelMode(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-kernel"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out.String(), errOut.String())
	}
	for _, name := range []string{"runtime", "allocator", "manager-stubs", "worker"} {
		if !strings.Contains(out.String(), name+": ok") {
			t.Errorf("missing clean %s in:\n%s", name, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit = %d", code)
	}
	if code := run([]string{"-size", "8", "nonexistent.s"}, &out, &errOut); code != 2 {
		t.Errorf("missing file exit = %d", code)
	}
	bad := writeTemp(t, "frobnicate r1\n")
	errOut.Reset()
	if code := run([]string{"-size", "8", bad}, &out, &errOut); code != 2 {
		t.Errorf("bad assembly exit = %d", code)
	}
	// Assembly errors carry the offending source line.
	if !strings.Contains(errOut.String(), "line 1") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

const callerCalleeSrc = `main:
	movi r4, 1
	jal r5, stop
	movi r30, 7
	halt
stop:
	halt
`

func TestInterprocInfer(t *testing.T) {
	path := writeTemp(t, callerCalleeSrc)
	var out, errOut strings.Builder
	if code := run([]string{"-interproc", "-infer", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "C = 6") {
		t.Errorf("output = %q, want interprocedural C = 6", out.String())
	}
	// Without -interproc the flat fall-through keeps r30 live: C = 31.
	out.Reset()
	if code := run([]string{"-infer", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "C = 31") {
		t.Errorf("output = %q, want intraprocedural C = 31", out.String())
	}
}

func TestCallgraphFlag(t *testing.T) {
	path := writeTemp(t, callerCalleeSrc)
	var out, errOut strings.Builder
	if code := run([]string{"-callgraph", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	dot := out.String()
	for _, want := range []string{"digraph callgraph", `"main" -> "stop"`, "noreturn"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestRoutinesFlag(t *testing.T) {
	path := writeTemp(t, callerCalleeSrc)
	var out, errOut strings.Builder
	if code := run([]string{"-routines", "-ctx", "32", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "routine main @0: C = 6") {
		t.Errorf("output = %q", out.String())
	}
	if !strings.Contains(out.String(), "routine stop @4") {
		t.Errorf("output = %q", out.String())
	}
}

func TestSARIFFormat(t *testing.T) {
	path := writeTemp(t, "add r9, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "8", "-format", "sarif", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("invalid SARIF: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("log = %+v", log)
	}
	if log.Runs[0].Tool.Driver.Name != "rrcheck" {
		t.Errorf("driver = %q", log.Runs[0].Tool.Driver.Name)
	}
	if len(log.Runs[0].Results) == 0 || log.Runs[0].Results[0].RuleID != "RR101" ||
		log.Runs[0].Results[0].Level != "error" {
		t.Errorf("results = %+v", log.Runs[0].Results)
	}
}

func TestKernelSARIF(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-kernel", "-interproc", "-format", "sarif"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), `"version": "2.1.0"`) {
		t.Errorf("output = %q", out.String())
	}
	// Suppressed intentional hazards surface as inSource suppressions,
	// not as new findings.
	if !strings.Contains(out.String(), `"inSource"`) {
		t.Errorf("kernel SARIF carries no inSource suppressions:\n%s", out.String())
	}
}

func TestResultCache(t *testing.T) {
	path := writeTemp(t, "add r9, r1, r1\nhalt\n")
	dir := t.TempDir()
	var out1, out2, errOut strings.Builder
	if code := run([]string{"-ctx", "8", "-cache", dir, path}, &out1, &errOut); code != 1 {
		t.Fatalf("first run exit %d", code)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir entries = %v, err %v", entries, err)
	}
	if code := run([]string{"-ctx", "8", "-cache", dir, path}, &out2, &errOut); code != 1 {
		t.Fatalf("cached run exit %d", code)
	}
	if out1.String() != out2.String() {
		t.Errorf("cached output differs:\n%q\nvs\n%q", out1.String(), out2.String())
	}
	// A different context size must miss (option fingerprint in key).
	var out3 strings.Builder
	if code := run([]string{"-ctx", "16", "-cache", dir, path}, &out3, &errOut); code != 0 {
		t.Fatalf("ctx 16 exit %d", code)
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 2 {
		t.Errorf("cache entries = %d, want 2", len(entries))
	}
	// Corrupt entries are misses, not failures.
	for _, e := range entries {
		os.WriteFile(filepath.Join(dir, e.Name()), []byte("not json"), 0o644)
	}
	var out4 strings.Builder
	if code := run([]string{"-ctx", "8", "-cache", dir, path}, &out4, &errOut); code != 1 {
		t.Fatalf("corrupt-cache run exit %d", code)
	}
}
