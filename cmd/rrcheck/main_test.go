package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanProgramExitsZero(t *testing.T) {
	path := writeTemp(t, "movi r1, 5\nadd r2, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-size", "8", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("output = %q", out.String())
	}
}

func TestViolationExitsOne(t *testing.T) {
	path := writeTemp(t, "add r9, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-size", "8", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "outside context") ||
		!strings.Contains(out.String(), "RR101") {
		t.Errorf("output = %q", out.String())
	}
}

func TestCtxFlagAliasesSize(t *testing.T) {
	path := writeTemp(t, "add r9, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "8", path}, &out, &errOut); code != 1 {
		t.Fatalf("-ctx exit %d", code)
	}
	out.Reset()
	if code := run([]string{"-ctx", "16", path}, &out, &errOut); code != 0 {
		t.Fatalf("-ctx 16 exit %d: %s", code, out.String())
	}
}

func TestInferMode(t *testing.T) {
	path := writeTemp(t, "add r13, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-infer", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "C = 14") || !strings.Contains(out.String(), "context size 16") {
		t.Errorf("output = %q", out.String())
	}
}

func TestInferIgnoresDeadStores(t *testing.T) {
	// A store target register still counts toward the requirement even
	// when its value is never read: the write lands in the context.
	path := writeTemp(t, "movi r13, 1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-infer", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "C = 14") {
		t.Errorf("output = %q", out.String())
	}
}

func TestMultiRRMFlag(t *testing.T) {
	path := writeTemp(t, "add c0.r3, c0.r4, c1.r6\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-size", "8", "-multirrm", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	// Without -multirrm the selector bit makes c1.r6 operand value 38.
	out.Reset()
	if code := run([]string{"-size", "8", path}, &out, &errOut); code != 1 {
		t.Fatalf("plain exit %d: %s", code, out.String())
	}
}

func TestPassesFlag(t *testing.T) {
	// ldrrm with a read in the delay slot: a hazard, not a bounds issue.
	src := "movi r2, 0\nldrrm r2\nadd r3, r1, r1\nhalt\n"
	path := writeTemp(t, src)
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "8", "-passes", "bounds", path}, &out, &errOut); code != 0 {
		t.Fatalf("bounds-only exit %d: %s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-ctx", "8", "-passes", "hazards", path}, &out, &errOut); code != 1 {
		t.Fatalf("hazards exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "RR201") {
		t.Errorf("output = %q", out.String())
	}
	out.Reset()
	if code := run([]string{"-ctx", "8", "-passes", "bogus", path}, &out, &errOut); code != 2 {
		t.Errorf("unknown pass exit = %d", code)
	}
}

func TestJSONFormat(t *testing.T) {
	path := writeTemp(t, "add r9, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "8", "-format", "json", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d", code)
	}
	var rep struct {
		Requirement int `json:"requirement"`
		Diagnostics []struct {
			Code string `json:"code"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if rep.Requirement != 10 || len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Code != "RR101" {
		t.Errorf("report = %+v", rep)
	}
	var errOut2 strings.Builder
	if code := run([]string{"-ctx", "8", "-format", "yaml", path}, &out, &errOut2); code != 2 {
		t.Errorf("bad format exit = %d", code)
	}
}

func TestSuppressionComment(t *testing.T) {
	path := writeTemp(t, "add r9, r1, r1 ; lint:ignore RR101 intentional\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "8", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "1 suppressed") {
		t.Errorf("output = %q", out.String())
	}
}

func TestDataWordsNotFlagged(t *testing.T) {
	path := writeTemp(t, "halt\n.word 0x12345678\n.word 0xffffffff\n")
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "4", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
}

func TestEntryFlag(t *testing.T) {
	// Without roots at every label, code after halt is unreachable; an
	// explicit -entry keeps only main live so r9 in helper is demoted
	// to the Info-level flat scan.
	src := "main:\nmovi r1, 1\nhalt\nhelper:\nadd r9, r1, r1\nhalt\n"
	path := writeTemp(t, src)
	var out, errOut strings.Builder
	if code := run([]string{"-ctx", "8", "-passes", "bounds", "-entry", "main", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, out.String(), errOut.String())
	}
	out.Reset()
	if code := run([]string{"-ctx", "8", "-entry", "nosuch", path}, &out, &errOut); code != 2 {
		t.Errorf("unknown label exit = %d", code)
	}
}

func TestKernelMode(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-kernel"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d:\n%s%s", code, out.String(), errOut.String())
	}
	for _, name := range []string{"runtime", "allocator", "manager-stubs", "worker"} {
		if !strings.Contains(out.String(), name+": ok") {
			t.Errorf("missing clean %s in:\n%s", name, out.String())
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit = %d", code)
	}
	if code := run([]string{"-size", "8", "nonexistent.s"}, &out, &errOut); code != 2 {
		t.Errorf("missing file exit = %d", code)
	}
	bad := writeTemp(t, "frobnicate r1\n")
	errOut.Reset()
	if code := run([]string{"-size", "8", bad}, &out, &errOut); code != 2 {
		t.Errorf("bad assembly exit = %d", code)
	}
	// Assembly errors carry the offending source line.
	if !strings.Contains(errOut.String(), "line 1") {
		t.Errorf("stderr = %q", errOut.String())
	}
}
