package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanProgramExitsZero(t *testing.T) {
	path := writeTemp(t, "movi r1, 5\nadd r2, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-size", "8", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ok:") {
		t.Errorf("output = %q", out.String())
	}
}

func TestViolationExitsOne(t *testing.T) {
	path := writeTemp(t, "add r9, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-size", "8", path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "outside context") {
		t.Errorf("output = %q", out.String())
	}
}

func TestInferMode(t *testing.T) {
	path := writeTemp(t, "add r13, r1, r1\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-infer", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "C = 14") || !strings.Contains(out.String(), "context size 16") {
		t.Errorf("output = %q", out.String())
	}
}

func TestMultiRRMFlag(t *testing.T) {
	path := writeTemp(t, "add c0.r3, c0.r4, c1.r6\nhalt\n")
	var out, errOut strings.Builder
	if code := run([]string{"-size", "8", "-multirrm", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args exit = %d", code)
	}
	if code := run([]string{"-size", "8", "nonexistent.s"}, &out, &errOut); code != 1 {
		t.Errorf("missing file exit = %d", code)
	}
	bad := writeTemp(t, "frobnicate r1\n")
	if code := run([]string{"-size", "8", bad}, &out, &errOut); code != 1 {
		t.Errorf("bad assembly exit = %d", code)
	}
}
