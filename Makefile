# Reproduction targets for the register relocation paper.

GO ?= go

.PHONY: all build test test-race vet lint-asm lint-asm-sarif bench bench-json bench-smoke bench-gate examples figures data serve-smoke load-smoke cluster-smoke cluster-bench clean

all: test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

# Race-detect the concurrent experiment harness, the event queue it
# drives, the serving layer (queue + worker pool + cache), the point
# store's cross-job single-flight coalescing, and the cluster fan-out
# client (hedges, retries, prober).
test-race:
	$(GO) test -race ./internal/experiment/... ./internal/sim/... ./internal/serve/... ./internal/pointstore/... ./internal/cluster/... ./cmd/rrserved/...

# End-to-end smoke test of the rrserved daemon: boot, submit a sweep
# over HTTP, poll to completion, check cache + metrics counters, drain
# via SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# Short load burst with rrload against a booted rrserved: overlapping
# grids, two tenants, admission control on, JSON snapshot checked.
load-smoke:
	./scripts/load_smoke.sh

# Distributed execution smoke test: the same sweep through a
# single-node daemon and a 1-coordinator/3-worker cluster must be
# byte-identical; also checks the point-cache lock, quorum readiness,
# cluster metrics, and an rrload burst (see docs/cluster.md).
cluster-smoke:
	./scripts/cluster_smoke.sh

# Cluster scaling benchmark under the -compute-rate capacity model:
# cold-sweep points/s through 1 node vs 3 workers, appended to
# BENCH_PR8.json as ServeLoad snapshots.
cluster-bench:
	./scripts/cluster_bench.sh

# Static-analyze every assembly routine the repo ships: the kernel
# runtime (Figure 3 switch, load/unload), the context allocators, the
# Multi-RRM manager stubs, and the example programs — in whole-program
# interprocedural mode (call graph, routine summaries, RR4xx hazards).
lint-asm:
	$(GO) run ./cmd/rrcheck -kernel -interproc
	$(GO) run ./cmd/rrcheck -interproc -ctx 8 examples/programs/fib.s
	$(GO) run ./cmd/rrcheck -interproc -ctx 32 examples/programs/pingpong.s

# Emit the whole-kernel analysis as SARIF for code scanning.
lint-asm-sarif:
	$(GO) run ./cmd/rrcheck -kernel -interproc -format sarif > rrcheck.sarif

# Regenerate every paper figure/table as benchmarks (metrics carry the
# efficiencies); mirrors the harness in bench_test.go.
bench:
	$(GO) test -bench=. -benchmem ./...

# Append a labelled snapshot of the tracked hot-path benchmarks to the
# trajectory file (see docs/performance.md for the format and the
# comparison workflow). Override either: make bench-json LABEL=tuned
LABEL ?= snapshot
BENCH_OUT ?= BENCH_PR10.json
bench-json:
	./scripts/bench_json.sh $(LABEL) $(BENCH_OUT)

# One-iteration pass over every benchmark: catches benchmarks that
# panic or no longer compile without paying for real measurement. CI
# runs this; it is not a performance measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Serving-throughput regression gate: the pinned serve benchmarks must
# stay within 15% of the best points/s recorded for this machine class
# in the committed BENCH_*.json trajectory (no history = pass).
bench-gate:
	./scripts/bench_gate.sh

# Run every example program.
examples:
	@for d in examples/*/; do \
		case $$d in examples/programs/) continue;; esac; \
		echo "=== $$d ==="; $(GO) run ./$$d || exit 1; \
	done

# Regenerate the ASCII figure plots under docs/figures.
figures:
	mkdir -p docs/figures
	$(GO) run ./cmd/rrsim -experiment figure5 -scale full -format plot > docs/figures/figure5.txt
	$(GO) run ./cmd/rrsim -experiment figure6 -scale full -format plot > docs/figures/figure6.txt
	$(GO) run ./cmd/rrsim -experiment scaling -scale full -format plot -panel P-sweep > docs/figures/scaling.txt
	$(GO) run ./cmd/rrsim -experiment cache-interference -scale full -format plot -panel utilization > docs/figures/cache-interference.txt

# Regenerate the per-experiment CSV data under docs/data.
data:
	mkdir -p docs/data
	$(GO) run ./cmd/rrsim -experiment all -scale full -format summary -o docs/data

clean:
	rm -f test_output.txt bench_output.txt
