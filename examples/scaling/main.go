// Scaling runs the closed-loop machine-size study: an event-driven
// interconnect supplies remote-miss latencies whose contention depends
// on the processors' achieved efficiency, and efficiency in turn
// depends on latency via the multithreading model — iterated to a
// fixed point per machine size. It demonstrates the paper's motivating
// trend: bigger machines push L up, and only the architecture with
// more resident contexts stays saturated.
package main

import (
	"fmt"

	"regreloc"
)

func main() {
	report, ok := regreloc.RunExperiment("scaling", 5, regreloc.QuickScale)
	if !ok {
		panic("scaling not registered")
	}
	fmt.Print(regreloc.RenderTable(report))
	fmt.Println()
	fmt.Println(regreloc.RenderPlot(report, "P-sweep"))
}
