// Cacheinterference explores the paper's Section 5.2: threads sharing
// a cache interfere destructively, so piling on resident contexts
// eventually hurts; an adaptive runtime limiter (the paper's future
// work, analogous to controlling the degree of multiprogramming) finds
// the sweet spot.
package main

import (
	"fmt"

	"regreloc"
)

func main() {
	report, ok := regreloc.RunExperiment("cache-interference", 7, regreloc.QuickScale)
	if !ok {
		panic("cache-interference not registered")
	}
	fmt.Print(regreloc.RenderTable(report))
	fmt.Println()
	fmt.Println(regreloc.RenderPlot(report, "utilization"))
}
