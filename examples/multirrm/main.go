// Multirrm demonstrates the Section 5.3 extension: multiple active
// register relocation masks. The high-order bit of each register
// operand selects between two RRMs, so a single instruction can
// operate across two contexts (add c0.r3, c0.r4, c1.r6), which the
// paper proposes as a compilation target for languages like TAM that
// share activation frames — and as a way to emulate register windows.
package main

import (
	"fmt"
	"log"

	"regreloc"
)

func main() {
	m := regreloc.NewMachine(regreloc.MachineConfig{Registers: 128, MultiRRM: true})

	// Producer context at base 32, consumer context at base 64.
	producer, consumer := 32, 64
	bits := m.RF.RRMBits()

	prog, err := regreloc.Assemble(`
		; Running with RRM0 = producer, RRM1 = consumer.
		movi c0.r4, 40        ; producer's local value
		movi c0.r5, 2         ; producer's local value
		add c1.r6, c0.r4, c0.r5   ; inter-context: write INTO the consumer
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	m.Load(prog, 0)
	m.RF.SetRRM2(producer | consumer<<uint(bits))

	if err := m.Run(100); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("producer context base %d: r4=%d r5=%d\n", producer, m.RF.Read(producer+4), m.RF.Read(producer+5))
	fmt.Printf("consumer context base %d: r6=%d (written by the producer's inter-context add)\n",
		consumer, m.RF.Read(consumer+6))

	// Register-window emulation: point RRM1 at the callee's window so
	// the caller's c1 registers alias the callee's c0 registers.
	fmt.Println("\nregister-window emulation:")
	m2 := regreloc.NewMachine(regreloc.MachineConfig{Registers: 128, MultiRRM: true})
	caller, callee := 32, 48
	p2, err := regreloc.Assemble(`
		movi c1.r2, 1234      ; caller writes its "out" register
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	m2.Load(p2, 0)
	m2.RF.SetRRM2(caller | callee<<uint(bits))
	if err := m2.Run(100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("caller's out register c1.r2 -> callee window register %d = %d\n",
		callee+2, m2.RF.Read(callee+2))
}
