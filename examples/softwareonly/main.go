// Softwareonly demonstrates the Section 5.1 scheme: register
// relocation performed entirely at compile time by generating multiple
// code versions over disjoint register subsets — no LDRRM hardware at
// all, arbitrary partition sizes, at the price of code expansion. It
// also shows why the paper found the technique impractical beyond two
// contexts on the 32-register MIPS R3000.
package main

import (
	"fmt"
	"log"

	"regreloc"
)

func main() {
	// The MIPS limitation (paper footnote: several of its 32 registers
	// are reserved for the OS and calling conventions).
	fmt.Printf("%s: usable registers support %d compile-time contexts\n",
		regreloc.ProfileMIPSR3000.Name, regreloc.ProfileMIPSR3000.MaxContexts())
	if _, err := regreloc.PlanSoftwareContexts(regreloc.ProfileMIPSR3000, []int{12, 12, 12}); err != nil {
		fmt.Println("three contexts on MIPS:", err)
	}

	// On a large register file, arbitrary (non-power-of-two!) sizes work.
	part, err := regreloc.PlanSoftwareContexts(regreloc.ProfileLargeFile, []int{11, 17, 23})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s partition (no power-of-two constraint):\n", regreloc.ProfileLargeFile.Name)
	for i := range part.Bases {
		fmt.Printf("  context %d: registers [%d, %d)\n", i, part.Bases[i], part.Bases[i]+part.Sizes[i])
	}

	// Compile one thread's code for two different contexts and run both
	// on a machine whose RRM never changes (no relocation hardware
	// used): compile-time relocation keeps them disjoint.
	src := `
		movi r0, 0
		movi r1, 10
	loop:
		addi r0, r0, 1
		bne r0, r1, loop
		halt
	`
	base, err := regreloc.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	m := regreloc.NewMachine(regreloc.MachineConfig{Registers: 128})
	for i := 0; i < 2; i++ {
		version, err := regreloc.RelocateAtCompileTime(base, part.Bases[i], part.Sizes[i])
		if err != nil {
			log.Fatal(err)
		}
		m.Reset()
		m.Load(version, 0)
		if err := m.Run(1000); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nversion %d (registers %d..%d): counter register r%d = %d after %d cycles",
			i, part.Bases[i], part.Bases[i]+part.Sizes[i]-1, part.Bases[i], m.RF.Read(part.Bases[i]), m.Cycles())
	}
	fmt.Printf("\n\ncode expansion for 2 contexts: %.0fx\n", 2.0)

	// Full software-only multithreading: weave two threads into ONE
	// program — registers renamed at compile time, segments chained
	// with always-taken branches, the RRM never touched.
	seg := "\taddi r1, r1, 1\n"
	thread := func(name string, rounds int) regreloc.SWThreadSource {
		s := seg
		for i := 1; i < rounds; i++ {
			s += "%yield\n" + seg
		}
		return regreloc.SWThreadSource{Name: name, Src: s}
	}
	wPart, err := regreloc.PlanSoftwareContexts(regreloc.ProfileLargeFile, []int{8, 8})
	if err != nil {
		log.Fatal(err)
	}
	woven, err := regreloc.WeaveThreads(
		[]regreloc.SWThreadSource{thread("a", 3), thread("b", 5)}, wPart)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := regreloc.Assemble(woven)
	if err != nil {
		log.Fatal(err)
	}
	wm := regreloc.NewMachine(regreloc.MachineConfig{Registers: 128})
	wm.Load(prog, 0)
	if err := wm.Run(1000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwoven execution (no LDRRM at all): thread a counted %d, thread b counted %d, RRM stayed %d\n",
		wm.RF.Read(wPart.Bases[0]+1), wm.RF.Read(wPart.Bases[1]+1), wm.RF.RRM())
}
