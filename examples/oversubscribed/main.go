// Oversubscribed runs the complete system on the instruction-level
// machine: more threads than the register file can hold, with every
// runtime operation executed as real assembly — Appendix A context
// allocation, Section 2.5 context loading, Figure 3 yields entered
// through the fault trap, and ready-ring relinking via the Section 5.3
// multiple-RRM extension. No cycle is assumed; everything is fetched,
// decoded (with RRM relocation), and executed.
package main

import (
	"fmt"
	"log"

	"regreloc/internal/kernel"
)

func main() {
	mgr, err := kernel.NewManager(kernel.WorkerSource())
	if err != nil {
		log.Fatal(err)
	}
	const threads = 12
	for i := 0; i < threads; i++ {
		mgr.Spawn(fmt.Sprintf("w%d", i), "worker", 5)
	}
	cycles, err := mgr.Run(3_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d threads to completion on a 128-register file\n", threads)
	fmt.Printf("  total cycles:        %d\n", cycles)
	fmt.Printf("  faults (switches):   %d\n", mgr.Faults)
	fmt.Printf("  asm allocations:     %d (+1 scheduler bootstrap)\n", mgr.AllocCalls-1)
	fmt.Printf("  asm deallocations:   %d\n", mgr.DeallocCalls)
	fmt.Printf("  context loads:       %d\n", mgr.Loads)
	fmt.Printf("  management passes:   %d\n", mgr.MgmtPasses)
	fmt.Printf("  final alloc bitmap:  %#08x (scheduler context only)\n", mgr.M.Mem[kernel.GlobalAllocMap])

	// Round two with long fault latencies: blocked contexts are
	// switch-spun past and evicted by the two-phase rule — the unload
	// runs the Section 2.5 routine, the ring is relinked with the
	// Section 5.3 multi-RRM write, and serviced threads reload.
	mgr2, err := kernel.NewManager(kernel.WorkerSourceLatency(600))
	if err != nil {
		log.Fatal(err)
	}
	mgr2.EnableLongFaults()
	for i := 0; i < threads; i++ {
		mgr2.Spawn(fmt.Sprintf("w%d", i), "worker", 5)
	}
	cycles2, err := mgr2.Run(5_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith 600-cycle fault latencies and two-phase eviction:\n")
	fmt.Printf("  total cycles:        %d\n", cycles2)
	fmt.Printf("  unloads (asm):       %d\n", mgr2.Unloads)
	fmt.Printf("  loads incl. reloads: %d\n", mgr2.Loads)
	fmt.Printf("  final alloc bitmap:  %#08x\n", mgr2.M.Mem[kernel.GlobalAllocMap])
}
