; fib.s — iterative Fibonacci, entirely in context-relative registers.
; Run with:  go run ./cmd/rrvm -dump 0:8 examples/programs/fib.s
; Relocate:  go run ./cmd/rrvm -rrm 64 -dump 64:72 examples/programs/fib.s
;
; r1 = n, r2 = fib(i-1), r3 = fib(i), r4 = result
	movi r1, 10      ; n
	movi r2, 0       ; fib(0)
	movi r3, 1       ; fib(1)
	movi r5, 1       ; i
loop:
	bge r5, r1, done
	add r4, r2, r3   ; fib(i+1)
	mov r2, r3
	mov r3, r4
	addi r5, r5, 1
	beq r0, r0, loop
done:
	mov r4, r3       ; result = fib(n)
	halt
