; pingpong.s — two contexts switching with raw LDRRM, no kernel:
; the minimal Figure 3 pattern. Context A lives at RRM 0, context B at
; RRM 32. Each context keeps its partner's mask in r2 and its own
; resume point in r0, exactly the paper's conventions.
;
; Run with:  go run ./cmd/rrvm -dump 0:40 examples/programs/pingpong.s
	movi r2, 32        ; A.r2 = B's mask
	movi r1, 0         ; A's counter
	; forge B's initial state (a loader would do this): we are still in
	; context A, so write B's registers by switching briefly.
	ldrrm r2           ; install B (delay slot next)
	movi r3, bstart    ; delay slot: A.r3 = B's entry (scratch) lint:ignore RR203
	movi r2, 0         ; B.r2 = A's mask
	movi r1, 0         ; B's counter
	movi r4, 10        ; B's iteration limit
	movi r0, bstart    ; B.r0 = B's entry point
	ldrrm r2           ; back to A (delay slot next)
	nop
	movi r4, 10        ; A's limit
astart:
	addi r1, r1, 1     ; A's work
	jal r0, switch     ; save resume PC, go run B
	bge r1, r4, done
	beq r0, r0, astart
bstart:
	addi r1, r1, 1     ; B's work
	jal r0, switch     ; save resume PC, go run A
	beq r0, r0, bstart
switch:
	ldrrm r2           ; Figure 3 yield, PSW elided
	nop                ; delay slot
	jmp r0             ; resume partner
done:
	halt
