// Timeline traces a short multithreaded run and renders what the
// processor did cycle by cycle: which context ran, the 8-cycle
// switches, two-phase spin probes, context loads/unloads, and idle
// gaps. The efficiency numbers of Figures 5 and 6 are summaries of
// exactly these timelines.
package main

import (
	"fmt"

	"regreloc"
)

func main() {
	rec := regreloc.NewTraceRecorder(0)
	cfg := regreloc.FlexibleNode(64, regreloc.TwoPhaseUnload, 8)
	cfg.Tracer = rec
	spec := regreloc.SyncFaultWorkload(40, 400, regreloc.PaperContextSizes(), 8, 2000)
	res := regreloc.RunNode(cfg, spec, 3)

	fmt.Printf("workload: %s   efficiency %.3f   breakdown: %s\n\n",
		spec.Name, res.Efficiency, res.Windowed.Breakdown())
	// Show the first chunk of steady state.
	total := res.Full.Total()
	fmt.Print(rec.Timeline(total/4, total/4+2000, 100))
}
