// Contextswitch runs the paper's Figure 3 on the instruction-level
// machine: two threads in separate relocated contexts ping-pong
// through the 4-instruction yield routine, and the per-switch cycle
// cost is measured (the paper claims "approximately 4 to 6 RISC
// cycles").
package main

import (
	"fmt"
	"log"

	"regreloc"
)

func main() {
	m := regreloc.NewMachine(regreloc.MachineConfig{Registers: 128, LDRRMDelaySlots: 1})
	k := regreloc.NewKernel(m, regreloc.NewBitmapAllocator(128, 64, regreloc.FlexibleCosts))

	// Each thread increments its private counter (context-relative r4)
	// and yields; "jal r0, yield" saves the resume PC in R0, exactly as
	// in the paper's listing.
	if _, err := k.LoadUser(`
	threadA:
		addi r4, r4, 1
		jal r0, yield
		beq r0, r0, threadA
	threadB:
		addi r4, r4, 1
		jal r0, yield
		beq r0, r0, threadB
	`); err != nil {
		log.Fatal(err)
	}

	a, err := k.Spawn("A", k.Runtime.Symbols["threadA"], 8)
	if err != nil {
		log.Fatal(err)
	}
	b, err := k.Spawn("B", k.Runtime.Symbols["threadB"], 8)
	if err != nil {
		log.Fatal(err)
	}
	k.Link()  // circular NextRRM ring: A -> B -> A
	k.Start() // install A's RRM, jump to its PC

	const budget = 28_000
	if err := k.Run(budget); err == nil {
		log.Fatal("threads halted unexpectedly")
	}

	ca := int64(m.RF.Read(a.Ctx.Base + 4))
	cb := int64(m.RF.Read(b.Ctx.Base + 4))
	perIter := float64(m.Cycles()) / float64(ca+cb)
	fmt.Printf("thread A context: registers [%d, %d), RRM = %d\n", a.Ctx.Base, a.Ctx.Base+a.Ctx.Size, a.Ctx.RRM())
	fmt.Printf("thread B context: registers [%d, %d), RRM = %d\n", b.Ctx.Base, b.Ctx.Base+b.Ctx.Size, b.Ctx.RRM())
	fmt.Printf("iterations: A=%d B=%d over %d cycles\n", ca, cb, m.Cycles())
	fmt.Printf("cycles per iteration: %.2f (1 addi + 1 beq + context switch)\n", perIter)
	fmt.Printf("measured context switch cost: %.2f cycles (paper: approximately 4-6)\n", perIter-2)
}
