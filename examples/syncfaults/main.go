// Syncfaults reproduces the paper's Figure 6 synchronization-fault
// experiments, including the Figure 6(a) anomaly: at F = 64 with short
// run lengths and long latencies, load/unload churn makes the
// 25-cycle general-purpose allocation expensive enough that fixed
// hardware contexts win marginally — until the Section 3.3 lookup-
// table allocator restores register relocation's advantage.
package main

import (
	"fmt"

	"regreloc"
)

func main() {
	report, ok := regreloc.RunExperiment("figure6", 1, regreloc.QuickScale)
	if !ok {
		panic("figure6 not registered")
	}
	fmt.Print(regreloc.RenderTable(report))
	fmt.Println()
	fmt.Println(regreloc.RenderPlot(report, "F=64"))

	fmt.Println("The Section 3.3 rerun with cheap allocation:")
	cheap, _ := regreloc.RunExperiment("figure6a-cheap", 1, regreloc.QuickScale)
	fmt.Print(regreloc.RenderTable(cheap))
}
