// Quickstart: compare register relocation against fixed hardware
// contexts on one multithreaded-processor workload, the paper's core
// experiment in a dozen lines.
package main

import (
	"fmt"

	"regreloc"
)

func main() {
	// A node with a 128-register file running 64 threads that fault
	// every ~16 cycles (geometric) and wait 256 cycles per remote
	// cache miss. Each thread requires 6-24 registers, as in the paper.
	spec := regreloc.CacheFaultWorkload(16, 256, regreloc.PaperContextSizes(), 64, 10_000)

	fixed := regreloc.RunNode(regreloc.FixedNode(128, regreloc.NeverUnload, 6), spec, 1)
	flex := regreloc.RunNode(regreloc.FlexibleNode(128, regreloc.NeverUnload, 6), spec, 1)

	fmt.Println("workload:", spec.Name)
	fmt.Printf("fixed 32-register hardware contexts: efficiency %.3f (%.1f contexts resident)\n",
		fixed.Efficiency, fixed.AvgResident)
	fmt.Printf("register relocation:                 efficiency %.3f (%.1f contexts resident)\n",
		flex.Efficiency, flex.AvgResident)
	fmt.Printf("speedup: %.2fx\n", flex.Efficiency/fixed.Efficiency)

	// The analytic model (paper Section 3.4) explains the gain: below
	// saturation, efficiency is linear in resident contexts.
	params := regreloc.NewAnalyticParams(16, 256, 6)
	fmt.Printf("\nanalytic model: E_sat=%.3f, saturation at N*=%.1f contexts\n",
		params.Saturated(), params.SaturationPoint())
	fmt.Printf("predicted: fixed E=%.3f, flexible E=%.3f\n",
		params.Efficiency(fixed.AvgResident), params.Efficiency(flex.AvgResident))
}
