// Cachefaults reproduces one panel of the paper's Figure 5: processor
// efficiency versus remote-memory latency under cache faults, fixed
// 32-register hardware contexts versus register relocation, with
// per-thread register requirements C ~ uniform[6, 24] and contexts
// never unloaded.
package main

import (
	"fmt"

	"regreloc"
)

func main() {
	report, ok := regreloc.RunExperiment("figure5", 1, regreloc.QuickScale)
	if !ok {
		panic("figure5 not registered")
	}
	fmt.Print(regreloc.RenderTable(report))
	fmt.Println()
	fmt.Println(regreloc.RenderPlot(report, "F=128"))
	fmt.Println("summary (flexible vs fixed):")
	fmt.Print(regreloc.RenderSummary(report))
}
