// Package regreloc is a full reproduction of "Register Relocation:
// Flexible Contexts for Multithreading" (Waldspurger & Weihl, ISCA
// 1993) as a Go library.
//
// The paper proposes a minimal hardware mechanism — a register
// relocation mask OR-ed into every instruction's register operand
// fields during decode — that lets system software partition a large
// register file into variable-size thread contexts, with context
// allocation, scheduling, and loading all performed by software. This
// module implements both halves of that story and the evaluation that
// compares them against conventional fixed-size hardware contexts:
//
//   - An instruction-level RISC machine with the RRM decode stage,
//     LDRRM delay slots, multiple-RRM extension (paper Section 5.3),
//     and OR/ADD/MUX/bounds-checked relocation variants, plus an
//     assembler, so the paper's runtime routines (the Figure 3 context
//     switch, the Section 2.5 multi-entry load/unload code, Appendix
//     A's bitmap allocator) execute and are measured rather than
//     assumed.
//   - A discrete-event simulator of a coarsely multithreaded processor
//     node (the paper's PROTEUS substitute) that regenerates every
//     figure: cache-fault experiments (Figure 5), synchronization-fault
//     experiments with competitive two-phase unloading (Figure 6), the
//     Section 3.3 cheap-allocation rerun, the Section 3.4 homogeneous
//     context sizes, combined faults, and the analytic model.
//
// This package is the public facade: it re-exports the library's main
// entry points. The implementation lives under internal/; the cmd/
// directory has CLI tools (rrsim, rrasm, rrvm, rrcheck) and examples/
// has runnable demonstrations.
package regreloc
