package regreloc

import (
	"regreloc/internal/alloc"
	"regreloc/internal/analytic"
	"regreloc/internal/asm"
	"regreloc/internal/cache"
	"regreloc/internal/analysis"
	"regreloc/internal/check"
	"regreloc/internal/compiler"
	"regreloc/internal/experiment"
	"regreloc/internal/isa"
	"regreloc/internal/kernel"
	"regreloc/internal/machine"
	"regreloc/internal/network"
	"regreloc/internal/node"
	"regreloc/internal/policy"
	"regreloc/internal/regfile"
	"regreloc/internal/rng"
	"regreloc/internal/swonly"
	"regreloc/internal/trace"
	"regreloc/internal/workload"
)

// Machine simulation: the processor with register relocation hardware.
type (
	// Machine is the instruction-level processor simulator.
	Machine = machine.Machine
	// MachineConfig configures a Machine (register file size,
	// relocation mode, LDRRM delay slots, multiple-RRM extension).
	MachineConfig = machine.Config
	// Program is an assembled binary image.
	Program = asm.Program
	// RelocationMode selects the relocation hardware variant.
	RelocationMode = regfile.Mode
	// Kernel is the software runtime: Figure 3 context switching,
	// Section 2.5 context load/unload, thread spawning and the NextRRM
	// ready ring.
	Kernel = kernel.Kernel
)

// Relocation hardware variants.
const (
	// RelocateOR is the paper's mechanism: absolute = RRM | operand.
	RelocateOR = regfile.ModeOR
	// RelocateADD is the Am29000-style base+offset alternative.
	RelocateADD = regfile.ModeADD
	// RelocateMUX is the footnote-3 variant that also confines threads
	// to their contexts.
	RelocateMUX = regfile.ModeMUX
	// RelocateBounded is OR relocation with a bounds-check trap.
	RelocateBounded = regfile.ModeBounded
)

// NewMachine returns an instruction-level machine.
func NewMachine(cfg MachineConfig) *Machine { return machine.New(cfg) }

// Assemble assembles source text for the machine's ISA.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// Disassemble renders one instruction word.
func Disassemble(word uint32) string { return isa.Disassemble(isa.Decode(isa.Word(word))) }

// NewKernel installs the software runtime on a machine.
func NewKernel(m *Machine, a Allocator) *Kernel { return kernel.New(m, a) }

// Context allocation.
type (
	// Allocator allocates power-of-two register contexts.
	Allocator = alloc.Allocator
	// Context is an allocated register block; its base is the RRM.
	Context = alloc.Context
	// AllocCosts is a cycle cost model for allocator operations.
	AllocCosts = alloc.CostModel
)

// Allocator cost models from the paper's Figure 4.
var (
	FlexibleCosts = alloc.FlexibleCosts
	FixedCosts    = alloc.FixedCosts
	LookupCosts   = alloc.LookupCosts
)

// NewBitmapAllocator returns the paper's Appendix A general-purpose
// dynamic allocator for a register file of fileSize registers.
func NewBitmapAllocator(fileSize, maxCtx int, costs AllocCosts) Allocator {
	return alloc.NewBitmap(fileSize, maxCtx, costs)
}

// NewFixedAllocator returns the conventional hardware-context baseline.
func NewFixedAllocator(fileSize, slotSize int) Allocator {
	return alloc.NewFixed(fileSize, slotSize)
}

// NewLookupAllocator returns the Section 3.3 specialized two-size
// allocator.
func NewLookupAllocator(fileSize int, costs AllocCosts) Allocator {
	return alloc.NewLookup(fileSize, costs)
}

// NewBuddyAllocator returns the buddy-system generalization.
func NewBuddyAllocator(fileSize, minSize, maxCtx int, costs AllocCosts) Allocator {
	return alloc.NewBuddy(fileSize, minSize, maxCtx, costs)
}

// Node-level simulation: the paper's evaluation engine.
type (
	// NodeConfig describes a simulated multithreaded processor node.
	NodeConfig = node.Config
	// NodeResult is the outcome of one simulation.
	NodeResult = node.Result
	// Workload describes a synthetic thread population.
	Workload = workload.Spec
	// Dist is a sampling distribution for workload parameters.
	Dist = rng.Dist
	// AnalyticParams is the Section 3.4 efficiency model.
	AnalyticParams = analytic.Params
)

// Unloading policies.
var (
	// NeverUnload keeps contexts resident (Figure 5 experiments).
	NeverUnload policy.Unload = policy.Never{}
	// TwoPhaseUnload is the competitive algorithm (Figure 6).
	TwoPhaseUnload policy.Unload = policy.TwoPhase{}
	// AlwaysUnload evicts on first probe (ablation).
	AlwaysUnload policy.Unload = policy.Always{}
)

// FixedNode returns the conventional baseline node configuration.
func FixedNode(fileSize int, pol policy.Unload, switchCost int64) NodeConfig {
	return node.FixedConfig(fileSize, pol, switchCost)
}

// FlexibleNode returns the register relocation node configuration.
func FlexibleNode(fileSize int, pol policy.Unload, switchCost int64) NodeConfig {
	return node.FlexibleConfig(fileSize, pol, switchCost)
}

// RunNode simulates a workload on a node; identical seeds reproduce
// identical runs.
func RunNode(cfg NodeConfig, spec Workload, seed uint64) NodeResult {
	return node.Run(cfg, spec, seed)
}

// TraceRecorder records a cycle-level activity timeline of a node
// simulation; attach it via NodeConfig.Tracer.
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a recorder keeping at most limit events
// (0 = unlimited).
func NewTraceRecorder(limit int) *TraceRecorder { return trace.New(limit) }

// CacheFaultWorkload builds a Section 3.2 workload (geometric run
// lengths, constant latency).
func CacheFaultWorkload(r, l int, ctx Dist, threads int, workPer int64) Workload {
	return workload.CacheFaults(r, l, ctx, threads, workPer)
}

// SyncFaultWorkload builds a Section 3.3 workload (geometric run
// lengths, exponential latency).
func SyncFaultWorkload(r, l int, ctx Dist, threads int, workPer int64) Workload {
	return workload.SyncFaults(r, l, ctx, threads, workPer)
}

// PaperContextSizes is C ~ uniform[6, 24], the paper's main context
// size distribution.
func PaperContextSizes() Dist { return workload.PaperCtxSize() }

// UniformContexts returns C ~ uniform[lo, hi].
func UniformContexts(lo, hi int) Dist { return rng.UniformInt{Lo: lo, Hi: hi} }

// ConstantContexts returns the homogeneous C = n distribution.
func ConstantContexts(n int) Dist { return rng.Constant{Value: n} }

// NewAnalyticParams returns the Section 3.4 model for run length r,
// latency l, and switch cost s.
func NewAnalyticParams(r, l, s float64) AnalyticParams { return analytic.NewParams(r, l, s) }

// Experiments: the per-figure reproduction harness.
type (
	// ExperimentReport is the output of one reproduced table or figure.
	ExperimentReport = experiment.Report
	// ExperimentScale controls population size and work per thread.
	ExperimentScale = experiment.Scale
)

// Experiment scales.
var (
	QuickScale = experiment.Quick
	FullScale  = experiment.Full
)

// ExperimentIDs lists the reproducible tables and figures.
func ExperimentIDs() []string { return experiment.IDs() }

// RunExperiment regenerates one table or figure by ID ("figure5",
// "figure6", "figure6a-cheap", "homogeneous-c8", ...).
func RunExperiment(id string, seed uint64, scale ExperimentScale) (*ExperimentReport, bool) {
	e, ok := experiment.Get(id)
	if !ok {
		return nil, false
	}
	return e.Run(seed, scale), true
}

// RenderTable renders a report as text tables (one per register file
// size panel).
func RenderTable(r *ExperimentReport) string { return experiment.Table(r) }

// RenderPlot renders one panel as an ASCII efficiency-vs-latency chart.
func RenderPlot(r *ExperimentReport, panel string) string { return experiment.Plot(r, panel) }

// RenderCSV renders a report's measurements as CSV.
func RenderCSV(r *ExperimentReport) string { return experiment.CSV(r) }

// RenderSummary renders per-panel fixed-vs-flexible speedup summaries.
func RenderSummary(r *ExperimentReport) string { return experiment.Summary(r) }

// Static checking and compiler support.
type (
	// CheckOptions configures the context-boundary checker.
	CheckOptions = check.Options
	// CheckViolation is one out-of-context register reference.
	CheckViolation = check.Violation
	// CallGraph carries per-function register usage for requirement
	// analysis.
	CallGraph = compiler.CallGraph
	// SizeAdvice is the compiler's context-size recommendation.
	SizeAdvice = compiler.Advice
)

// CheckProgram statically verifies that a binary stays within its
// declared context (paper Section 2.4) using the flat flow-insensitive
// scan; AnalyzeProgram is the flow-sensitive analyzer.
func CheckProgram(p *Program, opts CheckOptions) []CheckViolation {
	return check.Program(p, opts)
}

// Flow-sensitive static analysis (Section 2.4, grown into a real
// analyzer: CFG, liveness, hazards, derived requirements).
type (
	// AnalysisOptions configures the flow-sensitive analyzer.
	AnalysisOptions = analysis.Options
	// AnalysisResult is a completed analysis (diagnostics, liveness,
	// derived register requirement).
	AnalysisResult = analysis.Result
	// AnalysisDiagnostic is one analyzer finding.
	AnalysisDiagnostic = analysis.Diagnostic
)

// AnalyzeProgram runs the flow-sensitive analyzer over an assembled
// binary: reachability-aware context-boundary checks, LDRRM delay-slot
// hazards, relocation-mask validation, and the minimal context
// Requirement().
func AnalyzeProgram(p *Program, opts AnalysisOptions) *AnalysisResult {
	return analysis.Analyze(p, opts)
}

// AnalyzeSource assembles src and analyzes it, honoring lint:ignore
// suppression comments.
func AnalyzeSource(src string, opts AnalysisOptions) (*AnalysisResult, error) {
	return analysis.AnalyzeSource(src, opts)
}

// NewCallGraph returns an empty call graph for register-requirement
// analysis.
func NewCallGraph() *CallGraph { return compiler.NewCallGraph() }

// AdviseContextSize evaluates the Section 2.4 register/context-size
// tradeoff.
func AdviseContextSize(needed, fileSize int, params AnalyticParams) SizeAdvice {
	return compiler.AdviseContextSize(needed, fileSize, params)
}

// Software-only multithreading (Section 5.1).
type (
	// SWPartition is a compile-time register file partition.
	SWPartition = swonly.Partition
	// SWProfile describes a target for compile-time partitioning.
	SWProfile = swonly.Profile
)

// Software-only target profiles.
var (
	ProfileMIPSR3000 = swonly.MIPSR3000
	ProfileLargeFile = swonly.RegReloc128
)

// PlanSoftwareContexts divides a register file into compile-time
// contexts of the given (arbitrary) sizes.
func PlanSoftwareContexts(p SWProfile, sizes []int) (SWPartition, error) {
	return swonly.Plan(p, sizes)
}

// RelocateAtCompileTime rewrites a program's register operands for one
// compile-time context.
func RelocateAtCompileTime(p *Program, base, size int) (*Program, error) {
	return swonly.Relocate(p, base, size)
}

// SWThreadSource is one thread's code for compile-time weaving; see
// WeaveThreads.
type SWThreadSource = swonly.ThreadSource

// WeaveThreads compiles several threads into one program for a machine
// with no relocation hardware: registers renamed per compile-time
// context, segments chained round-robin with always-taken branches
// (Section 5.1's multiple-code-versions scheme, taken to completion).
func WeaveThreads(threads []SWThreadSource, part SWPartition) (string, error) {
	return swonly.Weave(threads, part)
}

// Extension substrates: the interconnect behind L and the shared cache
// behind R (paper Section 5.2 and the Section 3.4 scaling discussion).
type (
	// NetworkConfig describes a multiprocessor interconnect.
	NetworkConfig = network.Config
	// NetworkResult summarizes an interconnect simulation.
	NetworkResult = network.Result
	// CacheStudy configures a shared-cache interference experiment.
	CacheStudy = cache.Study
	// AdaptiveLimiter tunes the resident-context count at runtime.
	AdaptiveLimiter = cache.Adaptive
)

// SimulateNetwork runs the interconnect at a per-processor request
// rate for the given horizon.
func SimulateNetwork(cfg NetworkConfig, ratePerProc float64, horizon int64, seed uint64) NetworkResult {
	return network.Simulate(cfg, ratePerProc, horizon, seed)
}

// NetworkFixedPoint couples the interconnect to the multithreading
// model and returns the converged latency and efficiency for a node
// with n resident contexts.
func NetworkFixedPoint(cfg NetworkConfig, r, s, n float64, horizon int64, seed uint64) (latency, efficiency float64) {
	res := network.FixedPoint(cfg, r, s, n, horizon, seed)
	return res.Latency, res.Efficiency
}

// CoupledResult is the converged state of a node/network co-simulation.
type CoupledResult = network.CoupledResult

// CoupledNodeRun co-simulates the full node simulator against the
// shared interconnect at round granularity, relaxing the remote-miss
// latency to a fixed point — the whole-system composition of processor
// model, runtime software costs, and network.
func CoupledNodeRun(netCfg NetworkConfig, nodeCfg NodeConfig, spec Workload, horizon int64, seed uint64) CoupledResult {
	return network.CoupledRun(netCfg, nodeCfg, spec, horizon, seed)
}

// DefaultCacheStudy returns the representative Section 5.2 cache
// configuration.
func DefaultCacheStudy() CacheStudy { return cache.DefaultStudy() }

// NewAdaptiveLimiter returns a resident-context controller hill-
// climbing between minN and maxN.
func NewAdaptiveLimiter(startN, minN, maxN int) *AdaptiveLimiter {
	return cache.NewAdaptive(startN, minN, maxN)
}
